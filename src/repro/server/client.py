"""A small urllib-based client for the query service.

Two layers: :meth:`ReproClient.request` returns the raw
:class:`ClientResponse` (status + headers + body) without raising — the
load generator needs to *count* 503s and 504s, not die on them — while
the typed helpers (:meth:`query`, :meth:`render`, ...) raise
:class:`~repro.errors.ServerError` subclasses on non-200 so scripts get
clean failures.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.parse
import urllib.request

from ..backoff import Backoff
from ..errors import (
    IngestBackpressureError,
    NotPrimaryError,
    ServerError,
    ServerOverloadedError,
)
from ..obs import make_traceparent


class ClientResponse:
    """One HTTP exchange: status, headers, raw body."""

    __slots__ = ("status", "headers", "body")

    def __init__(self, status, headers, body):
        self.status = int(status)
        self.headers = dict(headers)
        self.body = body

    @property
    def ok(self):
        """True for a 2xx status."""
        return 200 <= self.status < 300

    def json(self):
        """The body decoded as JSON."""
        return json.loads(self.body.decode("utf-8"))

    @property
    def request_id(self):
        """The server-assigned request id, when present."""
        return self.headers.get("X-Repro-Request-Id")

    @property
    def trace_id(self):
        """The request's trace id, when present (join key for
        ``GET /trace/<id>`` and the slow-query log)."""
        return self.headers.get("X-Repro-Trace-Id")


class ReproClient:
    """Typed access to a running :class:`~repro.server.http.ReproServer`.

    Args:
        base_url: the server root, e.g. ``"http://127.0.0.1:8731"``
            (a trailing slash is stripped), or a list of roots — the
            first is preferred, the rest are failover candidates.
        timeout: socket timeout in seconds for every request.

    With several endpoints, **reads** (GET) fail over to the next
    endpoint on transport errors and 503s — a standby serves queries
    with bounded staleness, so pointing a dashboard at
    ``[primary, standby]`` keeps charts up through a primary crash.
    **Writes** are not retried on transport errors here (use
    :meth:`ingest_retry`), but a standby's 409 answer names the
    primary and the client follows it once, pinning the primary as
    the active endpoint.  ``client.failovers`` / ``client.redirects``
    count both behaviours for reports.

    The typed helpers (:meth:`query`, :meth:`render`, :meth:`series`,
    :meth:`stats`, :meth:`healthz`) raise
    :class:`~repro.errors.ServerOverloadedError` on 503 and
    :class:`~repro.errors.ServerError` on any other non-2xx status;
    transport failures raise ``urllib.error.URLError`` / ``OSError``.

    >>> # client = ReproClient("http://127.0.0.1:8731")
    >>> # client.query("SELECT M4(s) FROM x GROUP BY SPANS(100)")
    """

    def __init__(self, base_url, timeout=30.0):
        endpoints = [base_url] if isinstance(base_url, str) \
            else list(base_url)
        if not endpoints:
            raise ValueError("at least one endpoint is required")
        self._endpoints = [url.rstrip("/") for url in endpoints]
        self._active = 0
        self._timeout = float(timeout)
        self.failovers = 0       # endpoint switches (transport / 503)
        self.redirects = 0       # 409 write redirects followed
        self.ingest_retries = 0  # backoff retries in ingest_retry

    @property
    def endpoint(self):
        """The endpoint requests currently go to."""
        return self._endpoints[self._active]

    @property
    def endpoints(self):
        """Every configured endpoint (preferred first)."""
        return tuple(self._endpoints)

    # internal alias kept for the request builders below
    _base = endpoint

    # -- raw layer ---------------------------------------------------------------------

    def request(self, method, path, body=None, headers=None):
        """One exchange; HTTP error statuses return, they don't raise.

        Transport failures (connection refused, socket timeout) still
        raise ``urllib.error.URLError`` / ``OSError`` — there is no
        response to return.  With several endpoints, GETs rotate to
        the next one on transport errors and 503s before giving up,
        and any 409 that names a primary is followed once.
        """
        # Reads may fail over to a standby; writes must not be blindly
        # re-sent to a different node (POST /query is a read despite
        # the verb — the body is just too long for a query string).
        read = method == "GET" or path.split("?", 1)[0] == "/query"
        failover = read and len(self._endpoints) > 1
        attempts = len(self._endpoints) if failover else 1
        response = None
        for attempt in range(attempts):
            try:
                response = self._request_once(method, path, body, headers)
            except (urllib.error.URLError, OSError):
                if attempt + 1 >= attempts:
                    raise
                self._fail_over()
                continue
            if response.status == 503 and attempt + 1 < attempts:
                self._fail_over()
                continue
            break
        if response is not None and response.status == 409:
            primary = _primary_of(response)
            if primary is not None:
                self.redirects += 1
                self._switch_to(primary)
                response = self._request_once(method, path, body, headers)
        return response

    def _request_once(self, method, path, body, headers):
        req = urllib.request.Request(self._base + path, data=body,
                                     headers=headers or {}, method=method)
        try:
            with urllib.request.urlopen(req, timeout=self._timeout) as r:
                return ClientResponse(r.status, r.headers.items(), r.read())
        except urllib.error.HTTPError as exc:
            with exc:
                return ClientResponse(exc.code,
                                      (exc.headers or {}).items()
                                      if exc.headers else [],
                                      exc.read())

    def _fail_over(self):
        self._active = (self._active + 1) % len(self._endpoints)
        self.failovers += 1

    def _switch_to(self, url):
        url = url.rstrip("/")
        if url not in self._endpoints:
            self._endpoints.append(url)
        self._active = self._endpoints.index(url)

    def query_response(self, sql, timeout_ms=None, sleep_ms=None,
                       strict=None, sampled=None):
        """``POST /query`` returning the raw :class:`ClientResponse`.

        ``strict``: override the server's degraded-read policy for this
        request (True: a corrupt chunk fails with 500 instead of a
        flagged partial answer).

        Every request carries a fresh W3C ``traceparent`` header;
        ``sampled=True`` sets its sampled flag, asking the server to
        retain the request's trace unconditionally (fetch it back via
        ``response.trace_id``).
        """
        payload = {"sql": sql}
        if timeout_ms is not None:
            payload["timeout_ms"] = timeout_ms
        if sleep_ms is not None:
            payload["sleep_ms"] = sleep_ms
        if strict is not None:
            payload["strict"] = bool(strict)
        headers = {"Content-Type": "application/json",
                   "traceparent": make_traceparent(sampled=bool(sampled))}
        return self.request("POST", "/query",
                            body=json.dumps(payload).encode("utf-8"),
                            headers=headers)

    def render_response(self, series, width=256, height=64, fmt="json",
                        timeout_ms=None, sleep_ms=None, strict=None,
                        sampled=None):
        """``GET /render`` returning the raw :class:`ClientResponse`.

        ``sampled`` as for :meth:`query_response`.
        """
        params = {"series": series, "width": width, "height": height,
                  "format": fmt}
        if timeout_ms is not None:
            params["timeout_ms"] = timeout_ms
        if sleep_ms is not None:
            params["sleep_ms"] = sleep_ms
        if strict is not None:
            params["strict"] = "1" if strict else "0"
        headers = {"traceparent": make_traceparent(sampled=bool(sampled))}
        return self.request("GET", "/render?"
                            + urllib.parse.urlencode(params),
                            headers=headers)

    # -- typed layer -------------------------------------------------------------------

    def query(self, sql, timeout_ms=None, sampled=None):
        """Run one SQL query.

        Args:
            sql: the M4/aggregate dialect of Appendix A.1, e.g.
                ``SELECT M4(v) FROM s GROUP BY SPANS(100)``.
            timeout_ms: optional server-side deadline; exceeding it
                answers 504 (raised as :class:`ServerError`).
            sampled: ask the server to retain this request's trace
                (fetch it back with :meth:`trace`).

        Returns:
            The decoded response body: ``{"request_id", "columns",
            "rows", "degraded", ...}``.

        Raises:
            ServerOverloadedError: the admission queue was full (503).
            ServerError: any other non-2xx answer (bad SQL, unknown
                series, deadline exceeded, strict-mode corruption).
        """
        return self._checked(self.query_response(
            sql, timeout_ms=timeout_ms, sampled=sampled)).json()

    def render(self, series, width=256, height=64, fmt="json",
               timeout_ms=None, sampled=None):
        """Render a series to pixel columns server-side.

        Args:
            series: series name; its whole time range is rendered.
            width / height: chart dimensions in pixels.
            fmt: ``"json"`` (per-column point dict) or ``"pbm"``
                (portable bitmap bytes).
            timeout_ms: optional server-side deadline.
            sampled: ask the server to retain this request's trace.

        Returns:
            A dict for ``json``, raw bytes for ``pbm``.

        Raises:
            ServerOverloadedError / ServerError: as for :meth:`query`.
        """
        response = self._checked(self.render_response(
            series, width=width, height=height, fmt=fmt,
            timeout_ms=timeout_ms, sampled=sampled))
        return response.body if fmt == "pbm" else response.json()

    def series(self):
        """Registered series with their time ranges."""
        return self._checked(self.request("GET", "/series")) \
            .json()["series"]

    def stats(self, fmt="json"):
        """The server's observability snapshot.

        ``fmt="prometheus"`` returns exposition text (str) instead of
        the JSON document.
        """
        if fmt == "prometheus":
            response = self._checked(
                self.request("GET", "/stats?format=prometheus"))
            return response.body.decode("utf-8")
        return self._checked(self.request("GET", "/stats")).json()

    def healthz(self):
        """The health/load document."""
        return self._checked(self.request("GET", "/healthz")).json()

    def trace_list(self, limit=50):
        """Summaries of retained request traces (newest first)."""
        return self._checked(self.request(
            "GET", "/trace?limit=%d" % int(limit))).json()

    def trace(self, key, fmt="json"):
        """One retained trace by request id or trace id.

        ``fmt="chrome"`` returns the Chrome ``trace_event`` document
        (a dict with ``traceEvents``) instead of the raw span tree.

        Raises :class:`ServerError` (404) when the trace was not
        retained — ask for it with ``sampled=True`` at query time.
        """
        path = "/trace/" + urllib.parse.quote(str(key))
        if fmt == "chrome":
            path += "?format=chrome"
        return self._checked(self.request("GET", path)).json()

    # -- streaming ingest + live -------------------------------------------------------

    def ingest_response(self, series, timestamps, values, tenant=None):
        """``POST /ingest`` returning the raw :class:`ClientResponse`
        (a 429 shed returns, it does not raise — loadgen counts it)."""
        payload = {"series": series,
                   "timestamps": [int(t) for t in timestamps],
                   "values": [float(v) for v in values]}
        if tenant is not None:
            payload["tenant"] = str(tenant)
        return self.request(
            "POST", "/ingest",
            body=json.dumps(payload).encode("utf-8"),
            headers={"Content-Type": "application/json"})

    def ingest(self, series, timestamps, values, tenant=None):
        """Submit one batch of points to the streaming ingest queue.

        Returns the ack dict (``accepted``, ``pending_bytes``, ...).

        Raises:
            IngestBackpressureError: the queue or tenant budget was
                full (429); honor ``retry_after`` and resend.
            ServerError: any other non-2xx answer.
        """
        return self._checked(self.ingest_response(
            series, timestamps, values, tenant=tenant)).json()

    def ingest_retry(self, series, timestamps, values, tenant=None,
                     attempts=8, backoff=None):
        """Submit one batch, retrying sheds with jittered backoff.

        The one retry loop shared by the CLI, the load generator and
        the smoke scripts: 429/503 answers wait out a jittered
        exponential window with the server's ``Retry-After`` as a
        floor; transport errors rotate to the next endpoint (when one
        is configured) before retrying — re-sending a batch whose ack
        was lost is safe because identical points merge idempotently
        under last-write-wins.  Standby 409 redirects are followed by
        :meth:`request` underneath.

        Returns the ack dict.  The final attempt's error propagates;
        ``client.ingest_retries`` counts the waits across calls.
        """
        if backoff is None:
            backoff = Backoff()
        backoff.reset()
        for attempt in range(max(1, int(attempts))):
            try:
                return self.ingest(series, timestamps, values,
                                   tenant=tenant)
            except (IngestBackpressureError, ServerOverloadedError) as exc:
                if attempt + 1 >= attempts:
                    raise
                self.ingest_retries += 1
                backoff.wait(retry_after=exc.retry_after)
            except (urllib.error.URLError, OSError):
                if attempt + 1 >= attempts:
                    raise
                self.ingest_retries += 1
                if len(self._endpoints) > 1:
                    self._fail_over()
                backoff.wait()

    # -- replication -------------------------------------------------------------------

    def replication_status(self):
        """``GET /replication``: role, epoch, lag and replica status."""
        return self._checked(self.request("GET", "/replication")).json()

    def replication_fingerprint(self):
        """``GET /replication/fingerprint``: per-series content hashes."""
        return self._checked(self.request(
            "GET", "/replication/fingerprint")).json()

    def promote(self):
        """``POST /replication/promote``: make this standby a primary.

        Raises :class:`ServerError` (409) when the node has no
        replication role configured.
        """
        return self._checked(self.request(
            "POST", "/replication/promote", body=b"{}",
            headers={"Content-Type": "application/json"})).json()

    def replication_sweep(self):
        """``POST /replication/sweep``: one anti-entropy pass (primary
        only); the report's ``clean`` field is True when every replica
        matches after repair."""
        return self._checked(self.request(
            "POST", "/replication/sweep", body=b"{}",
            headers={"Content-Type": "application/json"})).json()

    def ingest_stream(self, batches):
        """``POST /ingest/stream``: many batches in one NDJSON request.

        ``batches`` is an iterable of ``(series, timestamps, values)``
        triples (or dicts already shaped like an ``/ingest`` body).
        Returns the per-line results document; raises
        :class:`IngestBackpressureError` only when every line shed.
        """
        lines = []
        for batch in batches:
            if isinstance(batch, dict):
                payload = batch
            else:
                series, timestamps, values = batch
                payload = {"series": series,
                           "timestamps": [int(t) for t in timestamps],
                           "values": [float(v) for v in values]}
            lines.append(json.dumps(payload))
        body = ("\n".join(lines) + "\n").encode("utf-8")
        return self._checked(self.request(
            "POST", "/ingest/stream", body=body,
            headers={"Content-Type": "application/x-ndjson"})).json()

    def live_poll(self, series, cursor=0, timeout_ms=None, span=None):
        """``GET /live``: long-poll for changes past ``cursor``.

        Returns ``{"cursor", "ranges", "reset", ...}``; with ``span``
        the document carries grid-aligned M4 ``deltas`` ready to
        splice into a chart on that grid.  Resume the next poll from
        the returned ``cursor``.
        """
        params = {"series": series, "cursor": int(cursor)}
        if timeout_ms is not None:
            params["timeout_ms"] = int(timeout_ms)
        if span is not None:
            params["span"] = int(span)
        return self._checked(self.request(
            "GET", "/live?" + urllib.parse.urlencode(params))).json()

    def live_events(self, series, cursor=0, duration=30.0, span=None):
        """``GET /live?mode=sse``: yield delta documents as they occur.

        A generator over the server-sent event stream; terminates when
        the server ends the stream (after ``duration`` seconds) or the
        connection drops.  Keep-alive comments are filtered out.
        """
        params = {"series": series, "cursor": int(cursor),
                  "duration": float(duration), "mode": "sse"}
        if span is not None:
            params["span"] = int(span)
        req = urllib.request.Request(
            self._base + "/live?" + urllib.parse.urlencode(params),
            headers={"Accept": "text/event-stream"})
        stream_timeout = max(self._timeout, float(duration) + 5.0)
        with urllib.request.urlopen(req, timeout=stream_timeout) as r:
            if r.status != 200:
                raise ServerError("live stream failed", status=r.status)
            for raw in r:
                line = raw.decode("utf-8").strip()
                if line.startswith("data: "):
                    yield json.loads(line[len("data: "):])

    def profile_start(self, interval_ms=None):
        """Start the server's sampling profiler."""
        payload = {"action": "start"}
        if interval_ms is not None:
            payload["interval_ms"] = interval_ms
        return self._checked(self.request(
            "POST", "/profile",
            body=json.dumps(payload).encode("utf-8"),
            headers={"Content-Type": "application/json"})).json()

    def profile_stop(self):
        """Stop the profiler; the result's ``collapsed`` field holds
        flamegraph.pl-compatible collapsed stacks."""
        return self._checked(self.request(
            "POST", "/profile",
            body=json.dumps({"action": "stop"}).encode("utf-8"),
            headers={"Content-Type": "application/json"})).json()

    def _checked(self, response):
        if response.ok:
            return response
        try:
            message = response.json().get("error", "unknown error")
        except ValueError:
            message = response.body.decode("utf-8", "replace")
        if response.status == 503:
            raise ServerOverloadedError(
                message,
                retry_after=int(response.headers.get("Retry-After", 1)))
        if response.status == 429:
            raise IngestBackpressureError(
                message,
                retry_after=int(response.headers.get("Retry-After", 1)))
        if response.status == 409:
            raise NotPrimaryError(message, primary=_primary_of(response))
        raise ServerError("%s (HTTP %d)" % (message, response.status),
                          status=response.status)


def _primary_of(response):
    """The primary URL named by a standby's 409 answer, if any."""
    try:
        doc = response.json()
    except ValueError:
        return None
    primary = doc.get("primary") if isinstance(doc, dict) else None
    return primary if isinstance(primary, str) and primary else None
