"""Admission control: a bounded queue feeding a fixed worker pool.

The serving layer's capacity story in one mechanism: every heavy
request (query, render) becomes a :class:`Job` that must win a slot in
a bounded ``queue.Queue`` before any engine work happens.  When the
queue is full the request is *shed* immediately with
:class:`~repro.errors.ServerOverloadedError` (the HTTP layer turns
that into 503 + ``Retry-After``) — the server's latency under overload
stays bounded because excess work is refused at the door, never
buffered without limit.

Workers are plain threads over the engine's PR-2 lock hierarchy: any
number of them can execute queries concurrently because queries only
take series read locks.  Each job carries a
:class:`~repro.storage.deadline.Deadline`; a job that expires while
still queued is failed without touching the engine, and one that
expires mid-execution is aborted cooperatively at the chunk-pipeline /
span checkpoints.

Shutdown is a drain: no new submissions, queued and in-flight jobs run
to completion, workers exit on sentinel.
"""

from __future__ import annotations

import queue
import threading
import time

from ..errors import DeadlineExceededError, ServerOverloadedError
from ..obs import NULL_REGISTRY, NULL_TRACER, activate
from ..storage.deadline import deadline_scope

_STOP = object()


class Job:
    """One admitted unit of work and its eventual outcome.

    Exactly one of ``result`` / ``error`` is set before :meth:`wait`
    returns True.  The submitting thread blocks in :meth:`wait`; the
    worker (or the shedding fast path) fulfils the job.

    ``span`` is the request's root span (or None): the worker activates
    it around :meth:`run`, which is how a trace crosses the pool
    boundary.  ``submitted_at``/``finished_at`` are perf_counter stamps
    bracketing the job's queue wait and worker hand-off, observed by
    the controller and the service respectively.
    """

    __slots__ = ("fn", "deadline", "request_id", "span", "result",
                 "error", "submitted_at", "finished_at", "_done")

    def __init__(self, fn, deadline=None, request_id=None, span=None):
        self.fn = fn
        self.deadline = deadline
        self.request_id = request_id
        self.span = span
        self.result = None
        self.error = None
        self.submitted_at = None
        self.finished_at = None
        self._done = threading.Event()

    def run(self):
        """Execute under the job's deadline scope; never raises."""
        try:
            with deadline_scope(self.deadline):
                if self.deadline is not None:
                    self.deadline.check()
                with activate(self.span):
                    self.result = self.fn()
        except BaseException as exc:  # fulfil even on KeyboardInterrupt
            self.error = exc
        finally:
            self.finished_at = time.perf_counter()
            self._done.set()

    def fail(self, error):
        """Fulfil the job with an error (used for queued timeouts)."""
        self.error = error
        self.finished_at = time.perf_counter()
        self._done.set()

    def wait(self, timeout=None):
        """Block until fulfilled; True unless ``timeout`` elapsed."""
        return self._done.wait(timeout)


class AdmissionController:
    """A bounded admission queue drained by ``workers`` threads.

    Args:
        workers: pool size (concurrent engine queries).
        queue_depth: maximum *queued* (not yet executing) jobs; a
            submission beyond this is shed.
        metrics: a :class:`repro.obs.MetricsRegistry` for the
            queue-depth gauge, the ``server_queue_wait_seconds``
            histogram and the shed/timeout counters (the engine's
            registry in production, so ``/stats`` reports them).
        tracer: a :class:`repro.obs.Tracer`; when a job carries a
            request span, its queue wait is attached to that span as an
            ``admission.queue_wait`` child.
        retry_after: seconds suggested to shed clients.
    """

    def __init__(self, workers=4, queue_depth=16, metrics=None,
                 tracer=None, retry_after=1):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if queue_depth < 1:
            raise ValueError("queue_depth must be >= 1")
        self._queue = queue.Queue(maxsize=int(queue_depth))
        self._metrics = metrics if metrics is not None else NULL_REGISTRY
        self._tracer = tracer if tracer is not None else NULL_TRACER
        self._retry_after = int(retry_after)
        self._closed = False
        self._lock = threading.Lock()
        self._workers = [
            threading.Thread(target=self._worker_loop,
                             name="repro-server-worker-%d" % i,
                             daemon=True)
            for i in range(int(workers))
        ]
        for thread in self._workers:
            thread.start()

    @property
    def workers(self):
        """Worker pool size."""
        return len(self._workers)

    @property
    def queue_depth(self):
        """Maximum queued jobs before shedding."""
        return self._queue.maxsize

    def submit(self, fn, deadline=None, request_id=None, span=None):
        """Admit ``fn`` or shed it.

        Returns the queued :class:`Job`.  Raises
        :class:`ServerOverloadedError` when the queue is full or the
        controller is shut down — the caller answers 503 without the
        engine ever seeing the request.
        """
        job = Job(fn, deadline=deadline, request_id=request_id, span=span)
        job.submitted_at = time.perf_counter()
        with self._lock:
            if self._closed:
                raise ServerOverloadedError(
                    "server is shutting down",
                    retry_after=self._retry_after)
            try:
                self._queue.put_nowait(job)
            except queue.Full:
                self._metrics.counter("server_shed_total").inc()
                raise ServerOverloadedError(
                    "admission queue full (%d queued)" % self._queue.maxsize,
                    retry_after=self._retry_after) from None
        self._metrics.gauge("server_queue_depth").set(self._queue.qsize())
        return job

    def _worker_loop(self):
        while True:
            job = self._queue.get()
            if job is _STOP:
                return
            self._metrics.gauge("server_queue_depth") \
                .set(self._queue.qsize())
            picked_up = time.perf_counter()
            if job.submitted_at is not None:
                self._metrics.histogram("server_queue_wait_seconds") \
                    .observe(picked_up - job.submitted_at)
                if job.span is not None:
                    self._tracer.timed_span(
                        "admission.queue_wait", job.submitted_at,
                        picked_up, parent=job.span)
            if job.deadline is not None and job.deadline.expired():
                # Expired while queued: fail without touching the engine.
                self._metrics.counter("server_timeout_total").inc()
                job.fail(DeadlineExceededError(
                    "deadline exceeded while queued"))
                continue
            self._metrics.gauge("server_inflight").inc()
            try:
                job.run()
            finally:
                self._metrics.gauge("server_inflight").dec()
            if isinstance(job.error, DeadlineExceededError):
                self._metrics.counter("server_timeout_total").inc()

    def shutdown(self):
        """Drain: refuse new jobs, finish queued ones, stop workers.

        Blocks until every admitted job has been fulfilled and all
        worker threads have exited.  Idempotent.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
        for _ in self._workers:
            self._queue.put(_STOP)  # after queued jobs: a drain, not a drop
        for thread in self._workers:
            thread.join()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.shutdown()
