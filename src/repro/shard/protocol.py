"""Length-prefixed pickle framing for the shard pipe protocol.

One frame is a 12-byte header — magic ``RSP1``, payload length,
CRC-32 of the payload — followed by the pickled object.  The CRC makes
a half-written or bit-flipped frame a loud
:class:`~repro.errors.ShardProtocolError` instead of a garbage pickle;
a clean EOF (peer closed the socket between frames) raises
:class:`EOFError`, which the router treats as "worker died".

Requests and responses are plain dicts::

    {"id": 7, "op": "execute", "kwargs": {...}, "deadline_s": 4.2}
    {"id": 7, "ok": True, "result": <object>}
    {"id": 7, "ok": False, "error": {"type": "SeriesNotFoundError",
                                     "message": "..."}}

Exceptions cross the pipe by *name*, not by pickle: the worker encodes
``type(exc).__name__`` + message (:func:`encode_error`) and the router
re-raises the matching class from :mod:`repro.errors`
(:func:`decode_error`), so a worker-side
:class:`~repro.errors.DeadlineExceededError` still maps to HTTP 504
and a ``ValueError`` still maps to 400.  Unknown types degrade to
:class:`~repro.errors.ShardError` rather than being trusted to
unpickle arbitrary state.

Trust model: the pipe is a private ``socketpair`` between a parent and
a child it spawned — pickle here is an IPC serializer between two
processes of the same codebase, not a network-facing format.
"""

from __future__ import annotations

import pickle
import struct
import zlib

from .. import errors as _errors
from ..errors import ShardError, ShardProtocolError

#: Frame magic; changes with any incompatible protocol revision.
MAGIC = b"RSP1"

_HEADER = struct.Struct("!4sII")  # magic, payload length, payload crc32

#: Refuse frames past this size — a corrupt length field must not make
#: the reader try to allocate gigabytes.
MAX_FRAME_BYTES = 1 << 30

#: Builtin exception types allowed to cross the pipe by name (everything
#: in :mod:`repro.errors` is allowed implicitly).
_BUILTIN_ERRORS = {"ValueError": ValueError, "TypeError": TypeError,
                   "KeyError": KeyError, "OSError": OSError}


def send_frame(sock, obj):
    """Pickle ``obj`` and write one framed message to ``sock``."""
    payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    if len(payload) > MAX_FRAME_BYTES:
        raise ShardProtocolError("frame too large: %d bytes"
                                 % len(payload))
    header = _HEADER.pack(MAGIC, len(payload), zlib.crc32(payload))
    sock.sendall(header + payload)


def recv_frame(sock):
    """Read one framed message; returns the unpickled object.

    Raises :class:`EOFError` on a clean close at a frame boundary and
    :class:`~repro.errors.ShardProtocolError` on anything that cannot
    be a valid frame (mid-frame truncation included — a worker that
    dies mid-write left the stream unrecoverable either way).
    """
    header = _recv_exact(sock, _HEADER.size, eof_ok=True)
    magic, length, crc = _HEADER.unpack(header)
    if magic != MAGIC:
        raise ShardProtocolError("bad frame magic %r" % magic)
    if length > MAX_FRAME_BYTES:
        raise ShardProtocolError("frame length %d exceeds limit" % length)
    payload = _recv_exact(sock, length, eof_ok=False)
    if zlib.crc32(payload) != crc:
        raise ShardProtocolError("frame checksum mismatch")
    try:
        return pickle.loads(payload)
    except Exception as exc:  # pickle raises many types
        raise ShardProtocolError("frame does not unpickle: %s"
                                 % exc) from exc


def _recv_exact(sock, n, eof_ok):
    """Exactly ``n`` bytes from ``sock`` (EOFError on clean close)."""
    chunks = []
    remaining = n
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            if eof_ok and remaining == n:
                raise EOFError("shard pipe closed")
            raise ShardProtocolError(
                "shard pipe truncated mid-frame (%d of %d bytes)"
                % (n - remaining, n))
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def encode_error(exc):
    """The wire form of a worker-side exception (type name + message)."""
    return {"type": type(exc).__name__, "message": str(exc)}


def decode_error(error):
    """Reconstruct a raisable exception from :func:`encode_error` output.

    Types defined in :mod:`repro.errors` (and a short allowlist of
    builtins) round-trip to their own class so status mapping and
    ``except`` clauses behave exactly as for a local engine; anything
    else becomes a :class:`~repro.errors.ShardError` naming the
    original type.
    """
    name = str(error.get("type", "ShardError"))
    message = str(error.get("message", ""))
    cls = getattr(_errors, name, None)
    if isinstance(cls, type) and issubclass(cls, _errors.ReproError):
        return cls(message)
    cls = _BUILTIN_ERRORS.get(name)
    if cls is not None:
        return cls(message)
    return ShardError("%s (from shard worker): %s" % (name, message))
