"""The shard router: an engine facade over N worker processes.

:class:`ShardRouter` presents (a large subset of) the
:class:`~repro.storage.engine.StorageEngine` surface — ``create_series``,
``write_batch``, ``flush_all``, ``series_names``, SQL execution,
rendering, observability — while delegating each operation to the
worker process that owns the series (``crc32(name) mod N``; see
:mod:`repro.shard.placement`).  The query service and the ingest
controller run against it unchanged, which is what turns the PR-3
server into a thin stateless scatter-gather tier.

Per shard the router keeps one :class:`subprocess.Popen`, one
``socketpair`` pipe, a writer lock and a reader thread.  Requests carry
monotonically increasing ids; the reader thread completes the matching
waiter as responses arrive, so many service threads multiplex one pipe
without head-of-line blocking (the worker runs its own small pool).

Deadlines: a call made under an installed request deadline
(:func:`~repro.storage.deadline.current_deadline`, set by the admission
worker) forwards the *remaining* budget to the worker and waits at most
that long (plus a small grace so the worker's own, better-attributed
:class:`~repro.errors.DeadlineExceededError` usually wins the race).
An over-budget scatter-gather request therefore answers 504, never
hangs.

Crash semantics: EOF or a failed write on a shard pipe marks the shard
*dead* — pending waiters fail with
:class:`~repro.errors.ShardDownError`, and later calls fail fast.  The
router does not respawn workers (quarantine-style: predictable degraded
reads until an operator restarts the server; see DESIGN.md §15).
Scatter operations skip dead shards and report them, so ``/series``,
``/stats`` and ``/healthz`` stay answerable with one shard down.
"""

from __future__ import annotations

import itertools
import json
import os
import subprocess
import sys
import threading
import time

from ..errors import (
    DeadlineExceededError,
    ReproError,
    ShardDownError,
    ShardError,
)
from ..obs import MetricsRegistry, SlowQueryLog, TraceStore, Tracer
from ..query.sql import parse as parse_sql
from ..storage.config import DEFAULT_CONFIG
from ..storage.deadline import current_deadline
from ..storage.iostats import IoStats
from .placement import config_as_dict, resolve_shards, shard_dir, shard_of
from .protocol import decode_error, recv_frame, send_frame

#: Default per-call timeout when no request deadline is installed.
DEFAULT_CALL_TIMEOUT = 30.0

#: Extra wait past the deadline so the worker's own
#: DeadlineExceededError (with checkpoint attribution) usually arrives
#: before the router gives up locally.
_DEADLINE_GRACE = 0.25


class _Waiter:
    """A one-shot mailbox a caller blocks on until its response lands."""

    __slots__ = ("event", "response", "error")

    def __init__(self):
        self.event = threading.Event()
        self.response = None
        self.error = None


class _ShardClient:
    """Router-side handle for one worker process (pipe + reader)."""

    def __init__(self, shard_id, proc, sock):
        self.shard_id = shard_id
        self.proc = proc
        self.sock = sock
        self.pid = proc.pid
        self.dead = False
        self.dead_reason = None
        self._send_lock = threading.Lock()
        self._pending_lock = threading.Lock()
        self._pending = {}
        self._reader = threading.Thread(
            target=self._read_loop, name="shard-%02d-reader" % shard_id,
            daemon=True)
        self._reader.start()

    @property
    def alive(self):
        return not self.dead

    def _read_loop(self):
        while True:
            try:
                message = recv_frame(self.sock)
            except (EOFError, OSError, ReproError) as exc:
                self._mark_dead("pipe closed: %s" % exc)
                return
            with self._pending_lock:
                waiter = self._pending.pop(message.get("id"), None)
            if waiter is None:
                continue  # late response to an abandoned (timed-out) call
            waiter.response = message
            waiter.event.set()

    def _mark_dead(self, reason):
        with self._pending_lock:
            if self.dead:
                return
            self.dead = True
            self.dead_reason = reason
            pending, self._pending = self._pending, {}
        error = ShardDownError(
            "shard %d worker (pid %d) is down: %s"
            % (self.shard_id, self.pid, reason), shard=self.shard_id)
        for waiter in pending.values():
            waiter.error = error
            waiter.event.set()
        try:
            self.sock.close()
        except OSError:
            pass

    def call(self, request_id, op, kwargs, timeout, deadline_s):
        """One request/response round trip; raises on error/timeout."""
        if self.dead:
            raise ShardDownError(
                "shard %d worker (pid %d) is down: %s"
                % (self.shard_id, self.pid, self.dead_reason),
                shard=self.shard_id)
        waiter = _Waiter()
        with self._pending_lock:
            if self.dead:
                raise ShardDownError(
                    "shard %d worker (pid %d) is down: %s"
                    % (self.shard_id, self.pid, self.dead_reason),
                    shard=self.shard_id)
            self._pending[request_id] = waiter
        message = {"id": request_id, "op": op, "kwargs": kwargs,
                   "deadline_s": deadline_s}
        try:
            with self._send_lock:
                send_frame(self.sock, message)
        except (OSError, ReproError) as exc:
            self._mark_dead("send failed: %s" % exc)
        if not waiter.event.wait(timeout):
            with self._pending_lock:
                self._pending.pop(request_id, None)
            raise DeadlineExceededError(
                "deadline exceeded waiting %.3fs for shard %d op %r"
                % (timeout, self.shard_id, op))
        if waiter.error is not None:
            raise waiter.error
        response = waiter.response
        if not response.get("ok"):
            raise decode_error(response.get("error") or {})
        return response.get("result")

    def shutdown(self, request_id, timeout=10.0):
        """Best-effort clean close; escalate to terminate/kill."""
        if self.alive:
            try:
                self.call(request_id, "close", {}, timeout, None)
            except ReproError:
                pass
        self._mark_dead("closed")
        try:
            self.proc.wait(timeout=timeout)
        except subprocess.TimeoutExpired:
            self.proc.terminate()
            try:
                self.proc.wait(timeout=2.0)
            except subprocess.TimeoutExpired:
                self.proc.kill()
                self.proc.wait()
        self._reader.join(timeout=2.0)


class ShardRouter:
    """N process-backed engine shards behind one engine-shaped facade.

    Construction spawns (or errors loudly) every worker, pings each one
    (which waits out engine open + WAL recovery), and records their
    recovery summaries.  ``shards=None`` follows the store's pinned
    topology (``shards.json``).

    The facade is intentionally *not* the full engine surface: chunk
    metadata, readers and locks stay worker-local.  What it does expose
    is exactly what the serving tier, the ingest controller and the CLI
    consume — plus ``execute_sql``/``render_series``, the routed forms
    of query execution whose results are byte-identical to running the
    same statement on a single engine holding the same series.
    """

    #: The serving layer branches on this instead of isinstance checks.
    is_sharded = True

    #: Routers have no process-local quarantine/tile cache; per-shard
    #: ones appear in the ``shards`` section of :meth:`stats`.
    quarantine = None
    tile_cache = None

    def __init__(self, data_dir, config=DEFAULT_CONFIG, shards=None,
                 worker_threads=4, request_timeout=DEFAULT_CALL_TIMEOUT):
        self._data_dir = os.fspath(data_dir)
        self._config = config
        self._n = resolve_shards(data_dir, shards)
        self._request_timeout = float(request_timeout)
        self._ids = itertools.count(1)
        self._closed = False
        self._metrics = MetricsRegistry(enabled=config.metrics_enabled)
        self._tracer = Tracer(stats=IoStats(), registry=self._metrics,
                              enabled=config.metrics_enabled)
        self._slow_log = SlowQueryLog(config.slow_query_seconds,
                                      config.slow_query_log_size)
        self._traces = TraceStore(config.trace_capacity,
                                  config.trace_sample_every,
                                  config.slow_query_seconds)
        self._shards = []
        config_json = json.dumps(config_as_dict(config), sort_keys=True)
        try:
            for shard_id in range(self._n):
                self._shards.append(self._spawn(shard_id, config_json,
                                                worker_threads))
            summaries = []
            for client in self._shards:
                pong = self._call(client, "ping", {},
                                  timeout=self._request_timeout)
                if pong.get("recovery"):
                    summaries.append("shard %02d: %s"
                                     % (client.shard_id,
                                        pong["recovery"]))
            self.recovery_summary = "; ".join(summaries) or None
        except BaseException:
            self.close()
            raise
        self._metrics.gauge("shards_total").set(self._n)
        self._metrics.gauge("shards_alive").set(self._n)

    def _spawn(self, shard_id, config_json, worker_threads):
        import socket
        parent, child = socket.socketpair()
        directory = shard_dir(self._data_dir, shard_id)
        os.makedirs(directory, exist_ok=True)
        argv = [sys.executable, "-m", "repro.shard.worker",
                "--fd", str(child.fileno()),
                "--dir", directory,
                "--shard-id", str(shard_id),
                "--threads", str(worker_threads),
                "--config", config_json]
        try:
            proc = subprocess.Popen(argv, pass_fds=(child.fileno(),),
                                    close_fds=True)
        except OSError as exc:
            parent.close()
            child.close()
            raise ShardError("cannot spawn shard %d worker: %s"
                             % (shard_id, exc)) from exc
        child.close()
        return _ShardClient(shard_id, proc, parent)

    # -- identity / plumbing -------------------------------------------------

    @property
    def data_dir(self):
        """The store root (shards live in ``shard-NN/`` below it)."""
        return self._data_dir

    @property
    def config(self):
        """The :class:`StorageConfig` every worker was spawned with."""
        return self._config

    @property
    def n_shards(self):
        """The pinned shard count."""
        return self._n

    @property
    def metrics(self):
        """The router-process :class:`MetricsRegistry` (serving-tier
        metrics; engine metrics live in each shard's registry)."""
        return self._metrics

    @property
    def tracer(self):
        """The router-process tracer (admission + scatter spans)."""
        return self._tracer

    @property
    def slow_log(self):
        """The router-level slow-query log (whole-request latency)."""
        return self._slow_log

    @property
    def traces(self):
        """The router-level :class:`TraceStore`."""
        return self._traces

    @property
    def closed(self):
        """True once :meth:`close` ran."""
        return self._closed

    def series_shard(self, name):
        """The shard id owning ``name`` (pure placement, no I/O)."""
        return shard_of(name, self._n)

    def shard_pids(self):
        """``{shard_id: worker pid}`` — used by the crash-drill smoke."""
        return {c.shard_id: c.pid for c in self._shards}

    def shard_workers(self):
        """``{"shard-NN": alive}`` liveness map for ``/healthz``."""
        return {"shard-%02d" % c.shard_id: c.alive for c in self._shards}

    def alive_shards(self):
        """Ids of shards whose workers are up."""
        return [c.shard_id for c in self._shards if c.alive]

    # -- request plumbing ----------------------------------------------------

    def _client(self, shard_id):
        return self._shards[shard_id]

    def _route(self, name):
        return self._shards[shard_of(name, self._n)]

    def _call(self, client, op, kwargs, timeout=None):
        """One call with deadline forwarding + metrics."""
        deadline = current_deadline()
        deadline_s = None
        if timeout is None:
            timeout = self._request_timeout
            if deadline is not None:
                remaining = deadline.remaining()
                deadline.check()
                deadline_s = remaining
                timeout = remaining + _DEADLINE_GRACE
        request_id = next(self._ids)
        started = time.perf_counter()
        try:
            result = client.call(request_id, op, kwargs, timeout,
                                 deadline_s)
        except DeadlineExceededError:
            self._metrics.counter("shard_deadline_timeouts_total",
                                  shard=str(client.shard_id)).inc()
            raise
        except ShardDownError:
            self._metrics.counter("shard_errors_total",
                                  shard=str(client.shard_id),
                                  kind="down").inc()
            self._metrics.gauge("shards_alive").set(
                len(self.alive_shards()))
            raise
        finally:
            self._metrics.counter("shard_requests_total", op=op).inc()
            self._metrics.histogram("shard_call_seconds", op=op).observe(
                time.perf_counter() - started)
        return result

    def _scatter(self, op, kwargs=None, timeout=None):
        """Run ``op`` on every live shard concurrently.

        Returns ``(results, down)``: ``{shard_id: result}`` for shards
        that answered, and the sorted ids of dead/failing shards."""
        results = {}
        down = []
        lock = threading.Lock()

        def one(client):
            try:
                result = self._call(client, op, dict(kwargs or {}),
                                    timeout=timeout)
                with lock:
                    results[client.shard_id] = result
            except ShardDownError:
                with lock:
                    down.append(client.shard_id)

        threads = [threading.Thread(target=one, args=(c,),
                                    name="scatter-%s-%02d"
                                         % (op, c.shard_id))
                   for c in self._shards]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        return results, sorted(down)

    # -- engine-facade: writes ----------------------------------------------

    def create_series(self, name):
        """Register ``name`` on its owning shard; returns the series id
        (unique within that shard)."""
        return self._call(self._route(name), "create_series",
                          {"name": name})

    def write(self, name, t, v):
        """Append one point to the owning shard."""
        self._call(self._route(name), "write", {"name": name,
                                                "t": t, "v": v})

    def write_batch(self, name, timestamps, values):
        """Append a batch to the owning shard."""
        self._call(self._route(name), "write_batch",
                   {"name": name, "timestamps": timestamps,
                    "values": values})

    def delete(self, name, t_start, t_end):
        """Delete ``[t_start, t_end]`` of ``name`` on its shard."""
        self._call(self._route(name), "delete",
                   {"name": name, "t_start": t_start, "t_end": t_end})

    def flush(self, name):
        """Flush one series' memtable on its owning shard."""
        self._call(self._route(name), "flush", {"name": name})

    def flush_all(self):
        """Flush every shard (skipping dead ones — used on shutdown,
        which must not raise because one worker already crashed).
        Returns the ids of shards that could not be flushed."""
        _, down = self._scatter("flush_all")
        return down

    # -- engine-facade: reads ------------------------------------------------

    def series_names(self):
        """The union of live shards' series names (sorted).

        Dead shards are skipped — the listing degrades exactly like a
        quarantined chunk does, rather than failing the endpoint."""
        results, _ = self._scatter("series_names")
        names = set()
        for listing in results.values():
            names.update(listing)
        return sorted(names)

    def series_info(self):
        """``(rows, down)``: merged per-series listing rows (see
        :func:`~repro.shard.worker.series_listing`) plus the ids of
        shards that could not answer."""
        results, down = self._scatter("series_info")
        rows = []
        for shard_id in sorted(results):
            rows.extend(results[shard_id])
        rows.sort(key=lambda r: r["name"])
        return rows, down

    def chunk_count(self, name):
        """Sealed chunk count for ``name`` on its owning shard."""
        return self._call(self._route(name), "chunk_count",
                          {"name": name})

    def total_points(self, name):
        """Total readable points of ``name`` (deletes applied)."""
        return self._call(self._route(name), "total_points",
                          {"name": name})

    def execute_sql(self, sql, strict=False, slow_info=None,
                    debug_sleep_s=0.0):
        """Parse ``sql`` locally, execute it on the owning shard.

        A series lives wholly on one shard, so the result table arrives
        whole and byte-identical to single-engine execution.  A dead
        owner degrades to an empty, flagged table (strict mode raises
        :class:`ShardDownError` instead) — the same contract corrupt
        chunks have.  ``debug_sleep_s`` is the test-only artificial
        work knob, forwarded to the worker so deadline propagation over
        the pipe is exercisable end to end.
        """
        parsed = parse_sql(sql)
        started = time.perf_counter()
        try:
            table = self._call(self._route(parsed.series), "execute",
                               {"sql": sql, "strict": strict,
                                "slow_info": slow_info,
                                "debug_sleep_s": debug_sleep_s})
        except ShardDownError as exc:
            if strict:
                raise
            table = _shard_down_table(parsed, exc)
        self._slow_log.record(sql, time.perf_counter() - started,
                              kind=parsed.kind, series=parsed.series,
                              shard=shard_of(parsed.series, self._n),
                              **(slow_info or {}))
        return table

    def render_series(self, series, width, height, t_qs=None, t_qe=None,
                      strict=False):
        """Routed form of ``render_chart``: ``(matrix, M4Result)`` from
        the owning shard, byte- and pixel-identical to rendering on a
        single engine.  Raises :class:`ShardDownError` when the owner
        is dead (the service turns that into a degraded blank chart
        unless strict)."""
        return self._call(self._route(series), "render",
                          {"series": series, "width": width,
                           "height": height, "t_qs": t_qs, "t_qe": t_qe,
                           "strict": strict})

    def delta_spans(self, series, ranges, span):
        """Routed ``/live`` delta computation (grid-aligned M4 spans)."""
        return self._call(self._route(series), "delta_spans",
                          {"series": series, "ranges": ranges,
                           "span": span})

    # -- observability -------------------------------------------------------

    def observability_snapshot(self):
        """Router metrics plus a ``shards`` map of per-worker snapshots.

        ``iostats`` is the numeric sum across live shards (same keys as
        a single engine), so dashboards keep working; per-shard detail
        — including each worker's quarantine — sits under ``shards``,
        with dead workers marked ``{"down": true}``.
        """
        snapshot = {"metrics": self._metrics.snapshot(),
                    "slow_queries": self._slow_log.entries()}
        results, down = self._scatter("stats")
        iostats = {}
        shards = {}
        for shard_id in sorted(results):
            worker = results[shard_id]
            shards["shard-%02d" % shard_id] = worker
            for key, value in (worker.get("iostats") or {}).items():
                if isinstance(value, (int, float)):
                    iostats[key] = iostats.get(key, 0) + value
        for shard_id in down:
            shards["shard-%02d" % shard_id] = {"down": True}
        snapshot["iostats"] = iostats
        snapshot["shards"] = shards
        snapshot["shards_down"] = down
        return snapshot

    # -- lifecycle -----------------------------------------------------------

    def close(self):
        """Close every worker (idempotent; never raises for a shard
        that already died — shutdown after a crash drill must work)."""
        if self._closed:
            return
        self._closed = True
        threads = [threading.Thread(target=c.shutdown,
                                    args=(next(self._ids),),
                                    name="close-%02d" % c.shard_id)
                   for c in self._shards]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        self._metrics.gauge("shards_alive").set(0)

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()
        return False


def _shard_down_table(parsed, exc):
    """The degraded empty :class:`ResultTable` for a dead owner.

    Column shape matches what the statement would have produced, so
    clients render an empty (not malformed) frame; ``meta`` carries the
    degraded flag, an operator-readable warning and the dead shard id.
    """
    from ..query.executor import _FIELD_NAMES, ResultTable
    if parsed.kind == "m4":
        columns = tuple(["span"] + [_FIELD_NAMES[c]
                                    for c in parsed.columns])
    elif parsed.kind == "agg":
        columns = tuple(["span"] + [name.upper()
                                    for name in parsed.columns])
    else:
        names = {"t": "time", "v": "value"}
        columns = tuple(names[c] for c in parsed.columns)
    meta = {"degraded": True, "skipped_ranges": [],
            "shard_down": exc.shard,
            "warning": "degraded result: %s" % exc}
    return ResultTable(columns, (), meta)
