"""Series → shard placement and the on-disk shard topology.

Placement is a pure function of the series name: ``crc32(name) mod N``.
No lookup table, no rebalancing state — any process that knows ``N``
computes the same owner, so the router, the CLI and an operator reading
``shards.json`` by hand all agree.  The cost is that ``N`` is fixed at
store-creation time; changing it means reloading (documented in
docs/OPERATIONS.md).

The topology is pinned in ``<store>/shards.json`` the first time a
store is opened with ``shards > 1``.  Every later open resolves the
shard count from that file, so ``repro serve --db store`` (no flag)
finds the right workers, and an explicit ``--shards M`` that disagrees
with the pinned ``N`` fails loudly instead of silently splitting the
keyspace differently.

:func:`open_store` is the single entry point the CLI and benches use:
``shards == 1`` returns a plain in-process
:class:`~repro.storage.engine.StorageEngine` over the root directory —
the fast path, byte- and pixel-identical to the pre-shard engine by
construction — while ``shards > 1`` returns a
:class:`~repro.shard.router.ShardRouter` over ``shard-NN/``
subdirectories, each of which is itself a complete single-engine store
(``repro fsck --db store/shard-00`` just works).
"""

from __future__ import annotations

import dataclasses
import enum
import json
import os
import zlib

from ..errors import StorageError
from ..storage.config import DEFAULT_CONFIG, StorageConfig

#: Topology file name, relative to the store root.
TOPOLOGY_FILE = "shards.json"

#: Bumped only with a migration path.
TOPOLOGY_VERSION = 1

#: Sanity bound: more shards than this is a typo, not a deployment.
MAX_SHARDS = 64


def shard_of(name, n_shards):
    """The owning shard id for ``name``: ``crc32(name) mod n_shards``.

    Stable across processes, platforms and restarts (CRC-32 is defined
    byte-for-byte; no hash randomization), so placement never needs to
    be persisted per series.
    """
    if n_shards < 1:
        raise ValueError("n_shards must be >= 1")
    return zlib.crc32(str(name).encode("utf-8")) % int(n_shards)


def shard_dir(data_dir, shard_id):
    """The store subdirectory owned by ``shard_id``."""
    return os.path.join(os.fspath(data_dir), "shard-%02d" % int(shard_id))


def topology_path(data_dir):
    """Absolute path of the store's ``shards.json``."""
    return os.path.join(os.fspath(data_dir), TOPOLOGY_FILE)


def read_topology(data_dir):
    """The pinned topology dict, or None for an unsharded store.

    Raises :class:`~repro.errors.StorageError` when the file exists but
    cannot be trusted (not JSON, wrong version, nonsense shard count) —
    a corrupt topology must never silently fall back to one shard.
    """
    path = topology_path(data_dir)
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except FileNotFoundError:
        return None
    except (OSError, ValueError) as exc:
        raise StorageError("cannot read shard topology %s: %s"
                           % (path, exc)) from exc
    if not isinstance(doc, dict) or doc.get("version") != TOPOLOGY_VERSION:
        raise StorageError("unsupported shard topology version in %s"
                           % path)
    shards = doc.get("shards")
    if not isinstance(shards, int) or isinstance(shards, bool) \
            or not 1 <= shards <= MAX_SHARDS:
        raise StorageError("invalid shard count %r in %s" % (shards, path))
    return doc


def write_topology(data_dir, n_shards):
    """Pin ``n_shards`` in the store root (atomic rename)."""
    doc = {"version": TOPOLOGY_VERSION, "shards": int(n_shards),
           "placement": "crc32"}
    path = topology_path(data_dir)
    tmp = "%s.%d.tmp" % (path, os.getpid())
    with open(tmp, "w", encoding="utf-8") as f:
        json.dump(doc, f, indent=2, sort_keys=True)
        f.write("\n")
        f.flush()
        os.fsync(f.fileno())
    os.replace(tmp, path)
    return doc


def config_as_dict(config):
    """A JSON-safe dict form of a :class:`StorageConfig` (enums → names).

    The router hands this to each worker on its command line; lives here
    (not in :mod:`~repro.shard.worker`) so importing the package never
    imports the worker module — ``python -m repro.shard.worker`` must be
    the first import of that module in the child or runpy warns.
    """
    out = {}
    for field in dataclasses.fields(config):
        value = getattr(config, field.name)
        out[field.name] = value.name if isinstance(value, enum.Enum) \
            else value
    return out


def config_from_dict(data):
    """Rebuild a :class:`StorageConfig` from :func:`config_as_dict`."""
    from ..storage.encoding import Compression, Encoding
    kwargs = dict(data)
    for name, enum_cls in (("time_encoding", Encoding),
                           ("value_encoding", Encoding),
                           ("compression", Compression)):
        if name in kwargs and isinstance(kwargs[name], str):
            kwargs[name] = enum_cls[kwargs[name]]
    return StorageConfig(**kwargs)


def _has_unsharded_data(data_dir):
    """True when the store root already holds single-engine state."""
    root = os.fspath(data_dir)
    if os.path.exists(os.path.join(root, "catalog.meta")):
        return True
    try:
        names = os.listdir(root)
    except OSError:
        return False
    return any(n.endswith(".tsfile") for n in names)


def resolve_shards(data_dir, requested=None):
    """The effective shard count for a store.

    ``requested`` is the CLI's ``--shards`` (None = follow the store).
    The pinned topology always wins; a disagreeing explicit request is
    an error, as is sharding a store that already holds unsharded data
    (placement would orphan it).
    """
    pinned = read_topology(data_dir)
    if pinned is not None:
        n = pinned["shards"]
        if requested is not None and int(requested) != n:
            raise StorageError(
                "store %s is pinned to %d shard(s); --shards %d "
                "disagrees (reload the data to reshard)"
                % (data_dir, n, int(requested)))
        return n
    n = 1 if requested is None else int(requested)
    if not 1 <= n <= MAX_SHARDS:
        raise StorageError("shard count must be in [1, %d], got %d"
                           % (MAX_SHARDS, n))
    if n > 1 and _has_unsharded_data(data_dir):
        raise StorageError(
            "store %s already holds unsharded data; cannot open it with "
            "--shards %d (reload into a fresh sharded store)"
            % (data_dir, n))
    return n


def open_store(data_dir, config=DEFAULT_CONFIG, shards=None, **router_kw):
    """Open ``data_dir`` as an engine or a shard router.

    Resolves the shard count (pinned topology beats ``shards``; see
    :func:`resolve_shards`), then returns:

    * a plain :class:`~repro.storage.engine.StorageEngine` over the
      root directory when the count is 1 — the in-process fast path,
      byte- and pixel-identical to the pre-shard engine because it *is*
      that engine; or
    * a :class:`~repro.shard.router.ShardRouter` over ``shard-NN/``
      subdirectories when the count is larger, pinning the topology on
      first open.

    Extra keyword arguments go to the router (worker threads, request
    timeout).
    """
    n = resolve_shards(data_dir, shards)
    if n == 1:
        from ..storage.engine import StorageEngine
        return StorageEngine(data_dir, config)
    os.makedirs(os.fspath(data_dir), exist_ok=True)
    if read_topology(data_dir) is None:
        write_topology(data_dir, n)
    from .router import ShardRouter
    return ShardRouter(data_dir, config, shards=n, **router_kw)
