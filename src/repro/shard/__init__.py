"""Shard-per-core engine: placement, pipe protocol, worker, router.

The package splits one logical store into N process-backed engine
shards so aggregate query throughput scales past the GIL (ROADMAP
item 1; DESIGN.md §15).  Public surface:

* :func:`open_store` — the one entry point: a plain in-process
  :class:`~repro.storage.engine.StorageEngine` for ``shards == 1``
  (byte- and pixel-identical to the pre-shard engine), a
  :class:`ShardRouter` otherwise.
* :func:`shard_of` — pure ``crc32 mod N`` series placement.
* :class:`ShardRouter` — the engine-shaped facade the server and CLI
  drive.
"""

from .placement import (
    TOPOLOGY_FILE,
    open_store,
    read_topology,
    resolve_shards,
    shard_dir,
    shard_of,
    write_topology,
)
from .router import DEFAULT_CALL_TIMEOUT, ShardRouter

__all__ = [
    "DEFAULT_CALL_TIMEOUT",
    "ShardRouter",
    "TOPOLOGY_FILE",
    "open_store",
    "read_topology",
    "resolve_shards",
    "shard_dir",
    "shard_of",
    "write_topology",
]
