"""Shard worker: one :class:`StorageEngine` served over a pipe.

Spawned by the router as ``python -m repro.shard.worker`` with an
inherited socketpair fd.  The worker owns a complete single-engine
store (its own WAL, tile cache, quarantine and obs registry under
``shard-NN/``) and executes framed requests
(:mod:`repro.shard.protocol`) against it.

Concurrency: a small thread pool runs operations so a slow query does
not head-of-line-block a ping — the engine is already thread-safe (the
server's admission pool exercises the same paths in the unsharded
deployment).  Responses are written under a lock; ordering across
requests is by completion, and the router correlates by request id.

Deadlines: each request may carry ``deadline_s`` (its *remaining*
budget at send time).  The worker installs a fresh
:class:`~repro.storage.deadline.Deadline` for the executing thread, so
the engine's cooperative checkpoints abort an over-budget query
exactly as they would in-process, and the resulting
:class:`~repro.errors.DeadlineExceededError` travels back by name.

Lifecycle: a ``close`` request drains in-flight operations, closes the
engine (persisting obs — and tiles, when configured) and exits 0.  If
the pipe hits EOF first (router died), the worker closes the engine
and exits too — no orphan processes.
"""

from __future__ import annotations

import argparse
import json
import os
import socket
import sys
import threading
from concurrent.futures import ThreadPoolExecutor

from ..errors import ReproError
from ..storage.deadline import Deadline, check_deadline, deadline_scope
from ..storage.engine import StorageEngine
from .placement import config_from_dict
from .protocol import encode_error, recv_frame, send_frame


def series_listing(engine):
    """One dict per series: name, time range, chunk/point/delete counts.

    Shared shape between the worker's ``series_info`` op and the
    single-engine ``GET /series`` path, so the scatter-gather listing
    merges without translation.
    """
    out = []
    for name in sorted(engine.series_names()):
        try:
            chunks = engine.chunks_for(name)
            deletes = engine.deletes_for(name)
        except ReproError:
            continue  # unflushed or racing a writer: skip, not fail
        if chunks:
            out.append({
                "name": name,
                "start_time": min(c.start_time for c in chunks),
                "end_time": max(c.end_time for c in chunks),
                "chunks": len(chunks),
                "points": sum(c.n_points for c in chunks),
                "deletes": len(deletes)})
        else:
            out.append({"name": name, "start_time": None,
                        "end_time": None, "chunks": 0, "points": 0,
                        "deletes": len(deletes)})
    return out


class ShardWorker:
    """The worker-side request loop around one engine."""

    def __init__(self, engine, sock, shard_id=0, threads=4):
        self._engine = engine
        self._sock = sock
        self._shard_id = int(shard_id)
        self._pool = ThreadPoolExecutor(
            max_workers=max(int(threads), 1),
            thread_name_prefix="shard-%02d-op" % shard_id)
        self._send_lock = threading.Lock()

    def serve(self):
        """Run the request loop until ``close`` or pipe EOF.

        Returns the process exit code (0 on a clean close)."""
        try:
            while True:
                try:
                    request = recv_frame(self._sock)
                except (EOFError, OSError, ReproError):
                    break  # router gone: shut down quietly
                if request.get("op") == "close":
                    self._pool.shutdown(wait=True)
                    self._close_engine()
                    self._reply(request, True, {"closed": True})
                    break
                self._pool.submit(self._run, request)
        finally:
            self._pool.shutdown(wait=True)
            self._close_engine()
            try:
                self._sock.close()
            except OSError:
                pass
        return 0

    def _close_engine(self):
        try:
            if not self._engine.closed:
                self._engine.close()
        except ReproError:
            pass

    def _run(self, request):
        deadline_s = request.get("deadline_s")
        deadline = Deadline(deadline_s) if deadline_s is not None else None
        try:
            with deadline_scope(deadline):
                if deadline is not None:
                    deadline.check()
                handler = self._OPS.get(request.get("op"))
                if handler is None:
                    raise ValueError("unknown shard op %r"
                                     % request.get("op"))
                result = handler(self, **(request.get("kwargs") or {}))
            self._reply(request, True, result)
        except BaseException as exc:  # every failure becomes a response
            self._reply(request, False, exc)

    def _reply(self, request, ok, payload):
        message = {"id": request.get("id"), "ok": ok}
        if ok:
            message["result"] = payload
        else:
            message["error"] = encode_error(payload)
        try:
            with self._send_lock:
                send_frame(self._sock, message)
        except (OSError, ReproError):
            pass  # router gone; the read loop will see EOF and exit

    # -- operations (one method per wire op) ---------------------------------

    def _op_ping(self):
        return {"pid": os.getpid(), "shard": self._shard_id,
                "series": len(self._engine.series_names()),
                "recovery": self._engine.recovery_summary}

    def _op_create_series(self, name):
        return self._engine.create_series(name)

    def _op_write(self, name, t, v):
        self._engine.write(name, t, v)
        return True

    def _op_write_batch(self, name, timestamps, values):
        self._engine.write_batch(name, timestamps, values)
        return True

    def _op_delete(self, name, t_start, t_end):
        self._engine.delete(name, t_start, t_end)
        return True

    def _op_flush(self, name):
        self._engine.flush(name)
        return True

    def _op_flush_all(self):
        self._engine.flush_all()
        return True

    def _op_series_names(self):
        return sorted(self._engine.series_names())

    def _op_series_info(self):
        return series_listing(self._engine)

    def _op_chunk_count(self, name):
        return len(self._engine.chunks_for(name))

    def _op_total_points(self, name):
        return self._engine.total_points(name)

    def _op_execute(self, sql, strict=False, slow_info=None,
                    debug_sleep_s=0.0):
        from ..query.executor import Executor
        from ..query.sql import parse as parse_sql
        if debug_sleep_s:
            _sleep_checked(debug_sleep_s)
        executor = Executor(self._engine,
                            degraded=False if strict else None)
        return executor.execute(parse_sql(sql), statement=sql,
                                slow_info=slow_info)

    def _op_render(self, series, width, height, t_qs=None, t_qe=None,
                   strict=False):
        from ..server.service import render_chart
        return render_chart(self._engine, series, width, height,
                            t_qs=t_qs, t_qe=t_qe,
                            degraded=False if strict else None)

    def _op_delta_spans(self, series, ranges, span):
        from ..server.service import compute_delta_spans
        return compute_delta_spans(self._engine, series, ranges, span)

    def _op_stats(self):
        snapshot = self._engine.observability_snapshot()
        quarantine = self._engine.quarantine
        snapshot["quarantine"] = {"chunks": len(quarantine),
                                  "entries": quarantine.entries()}
        snapshot["pid"] = os.getpid()
        return snapshot

    def _op_debug_sleep(self, seconds):
        _sleep_checked(seconds)
        return True

    _OPS = {
        "ping": _op_ping,
        "create_series": _op_create_series,
        "write": _op_write,
        "write_batch": _op_write_batch,
        "delete": _op_delete,
        "flush": _op_flush,
        "flush_all": _op_flush_all,
        "series_names": _op_series_names,
        "series_info": _op_series_info,
        "chunk_count": _op_chunk_count,
        "total_points": _op_total_points,
        "execute": _op_execute,
        "render": _op_render,
        "delta_spans": _op_delta_spans,
        "stats": _op_stats,
        "debug_sleep": _op_debug_sleep,
    }


def _sleep_checked(seconds):
    """Sleep in slices so the installed deadline still cancels it."""
    import time
    end = time.monotonic() + float(seconds)
    while True:
        check_deadline()
        remaining = end - time.monotonic()
        if remaining <= 0:
            return
        time.sleep(min(remaining, 0.01))


def main(argv=None):
    """Worker entry point (``python -m repro.shard.worker``).

    Arguments: ``--fd`` (inherited socketpair end), ``--dir`` (this
    shard's store directory), ``--shard-id``, ``--threads`` and
    ``--config`` (the JSON form of the router's
    :class:`StorageConfig`, from :func:`config_as_dict`).
    """
    parser = argparse.ArgumentParser(prog="repro-shard-worker")
    parser.add_argument("--fd", type=int, required=True)
    parser.add_argument("--dir", required=True)
    parser.add_argument("--shard-id", type=int, default=0)
    parser.add_argument("--threads", type=int, default=4)
    parser.add_argument("--config", default="{}")
    args = parser.parse_args(argv)
    sock = socket.socket(fileno=args.fd)
    config = config_from_dict(json.loads(args.config))
    engine = StorageEngine(args.dir, config)
    return ShardWorker(engine, sock, shard_id=args.shard_id,
                       threads=args.threads).serve()


if __name__ == "__main__":
    sys.exit(main())
