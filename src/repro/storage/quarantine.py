"""Quarantine: the per-chunk damage registry behind degraded reads.

When a read finds a chunk whose bytes fail their checksum (or cannot be
decoded, or whose file is gone), the chunk is *quarantined*: recorded
here, skipped by subsequent queries, and surfaced to the user as a
degraded result carrying the skipped time range — one damaged chunk out
of thousands must not take down the series, let alone the server.

Entries are keyed by ``(file basename, data_offset)`` — stable across
engine restarts and directory moves — and persisted atomically to
``quarantine.json`` next to the data files.  The registry is loaded
tolerantly: a corrupt quarantine file resets to empty with a warning
(its contents are re-discoverable by ``repro fsck`` or by the next
failing read; losing it never loses data, only the memo of damage).
"""

from __future__ import annotations

import json
import logging
import os
import threading

from . import faultfs

FILENAME = "quarantine.json"

log = logging.getLogger("repro.storage.quarantine")


def chunk_key(file_path, data_offset):
    """The stable identity of a chunk: ``(basename, data_offset)``."""
    return os.path.basename(file_path), int(data_offset)


class QuarantineRegistry:
    """Thread-safe set of damaged chunks, persisted per data directory.

    ``registry``: optional :class:`repro.obs.MetricsRegistry` for the
    quarantined counter/gauge.
    """

    def __init__(self, data_dir, registry=None):
        from ..obs import NULL_REGISTRY
        registry = registry if registry is not None else NULL_REGISTRY
        self._c_added = registry.counter("quarantined_chunks_total")
        self._g_size = registry.gauge("quarantined_chunks")
        self._path = os.path.join(os.fspath(data_dir), FILENAME)
        self._lock = threading.Lock()
        self._entries = {}
        self._subscribers = []
        self._load()

    @property
    def path(self):
        """Location of the persisted registry."""
        return self._path

    def subscribe(self, fn):
        """Register a change callback.

        ``fn(entry_dict)`` fires after a chunk is newly quarantined and
        ``fn(None)`` after :meth:`clear` — outside the registry lock, so
        the callback may take its own (leaf) locks.  The tile cache
        subscribes to invalidate tiles covering newly-damaged chunks.
        """
        self._subscribers.append(fn)

    def _notify(self, entry):
        for fn in list(self._subscribers):
            fn(entry)

    def _load(self):
        if not os.path.exists(self._path):
            return
        try:
            with faultfs.fopen(self._path, "rb") as f:
                raw = json.loads(f.read().decode("utf-8"))
            for entry in raw["chunks"]:
                key = (str(entry["file"]), int(entry["data_offset"]))
                self._entries[key] = dict(entry)
        except (OSError, ValueError, KeyError, TypeError) as exc:
            log.warning("%s: unreadable quarantine registry (%s) — "
                        "starting empty", self._path, exc)
            self._entries = {}
        self._g_size.set(len(self._entries))

    def _persist_locked(self):
        payload = json.dumps(
            {"chunks": sorted(self._entries.values(),
                              key=lambda e: (e["file"], e["data_offset"]))},
            indent=2, sort_keys=True).encode("utf-8")
        tmp = "%s.%d.tmp" % (self._path, os.getpid())
        try:
            with faultfs.fopen(tmp, "wb") as f:
                f.write(payload)
                f.flush()
                faultfs.fsync(f)
            faultfs.replace(tmp, self._path)
        except OSError as exc:
            # Quarantine persistence is best-effort: the in-memory set
            # still protects this process, and damage is rediscoverable.
            log.warning("%s: could not persist quarantine registry: %s",
                        self._path, exc)
            try:
                os.remove(tmp)
            except OSError:
                pass

    def add(self, file_path, data_offset, *, series_id=None,
            start_time=None, end_time=None, reason=""):
        """Quarantine one chunk; returns True if it was newly added."""
        key = chunk_key(file_path, data_offset)
        with self._lock:
            if key in self._entries:
                return False
            self._entries[key] = {
                "file": key[0],
                "data_offset": key[1],
                "series_id": series_id,
                "start_time": start_time,
                "end_time": end_time,
                "reason": str(reason),
            }
            entry = dict(self._entries[key])
            self._c_added.inc()
            self._g_size.set(len(self._entries))
            self._persist_locked()
        log.warning("quarantined chunk %s@%d (series %s): %s",
                    key[0], key[1], series_id, reason)
        self._notify(entry)
        return True

    def add_meta(self, meta, reason=""):
        """Quarantine the chunk a :class:`ChunkMetadata` describes."""
        return self.add(meta.file_path, meta.data_offset,
                        series_id=meta.series_id,
                        start_time=int(meta.start_time),
                        end_time=int(meta.end_time), reason=reason)

    def contains(self, file_path, data_offset):
        """Is this chunk quarantined?"""
        with self._lock:
            return chunk_key(file_path, data_offset) in self._entries

    def contains_meta(self, meta):
        """Is the chunk behind this metadata quarantined?"""
        return self.contains(meta.file_path, meta.data_offset)

    def entries(self):
        """A snapshot list of entry dicts, sorted by (file, offset)."""
        with self._lock:
            return sorted(self._entries.values(),
                          key=lambda e: (e["file"], e["data_offset"]))

    def __len__(self):
        with self._lock:
            return len(self._entries)

    def clear(self):
        """Forget all quarantined chunks (used after repair/compaction)."""
        with self._lock:
            self._entries = {}
            self._g_size.set(0)
            self._persist_locked()
        self._notify(None)
