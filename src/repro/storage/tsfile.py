"""TsFile: the on-disk container for chunks, after Apache IoTDB's TsFile.

Layout::

    magic "TSFLv1\\n\\0"
    chunk data blocks, back to back
    metadata section:  u32 chunk count, then each ChunkMetadata
    footer:            u64 metadata offset, u32 metadata length, magic again

The metadata section sits at the tail, so a reader fetches every chunk's
statistics, page directory and step-regression index with one small read
— the asymmetry the M4-LSM operator exploits.  All reads are accounted
against an :class:`repro.storage.iostats.IoStats`.
"""

from __future__ import annotations

import os
import struct
import threading

import numpy as np

from ..errors import CorruptFileError, ReadOnlyError, StorageError
from .chunk import ChunkMetadata
from .encoding import decode_page
from .iostats import IoStats

MAGIC = b"TSFLv1\n\0"
_FOOTER = struct.Struct("<QI8s")


class TsFileWriter:
    """Sequentially writes chunk data blocks, then seals the file.

    >>> # writer = TsFileWriter("/tmp/x.tsfile")
    >>> # writer.append_chunk(block, metadata); writer.close()
    """

    def __init__(self, path):
        self._path = os.fspath(path)
        self._file = open(self._path, "wb")
        self._file.write(MAGIC)
        self._offset = len(MAGIC)
        self._metadata = []
        self._closed = False

    @property
    def path(self):
        """Destination file path."""
        return self._path

    def append_chunk(self, data_block, metadata):
        """Write one chunk's data block; returns the located metadata."""
        if self._closed:
            raise ReadOnlyError("TsFile %s is already sealed" % self._path)
        located = metadata.located(self._path, self._offset, len(data_block))
        self._file.write(data_block)
        # Push the block out of the userspace buffer so concurrent
        # readers (pooled TsFileReaders opened on the still-growing
        # file) can fetch sealed chunks by offset right away.
        self._file.flush()
        self._offset += len(data_block)
        self._metadata.append(located)
        return located

    def close(self):
        """Seal the file: write the metadata section and footer.

        Returns the list of located :class:`ChunkMetadata`.
        """
        if self._closed:
            return self._metadata
        meta_offset = self._offset
        blob = bytearray(struct.pack("<I", len(self._metadata)))
        for meta in self._metadata:
            blob += meta.to_bytes()
        self._file.write(blob)
        self._file.write(_FOOTER.pack(meta_offset, len(blob), MAGIC))
        self._file.close()
        self._closed = True
        return self._metadata

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()


class TsFileReader:
    """Random-access reader over a sealed TsFile.

    One reader per file; the storage engine keeps a pool of them, so one
    reader may serve many concurrent queries.  Seek+read pairs on the
    shared file handle are serialized by an internal lock; the expensive
    page decode (numpy + zlib, both GIL-releasing) happens outside it,
    which is what makes the parallel chunk pipeline pay.  Every byte
    fetched and every page decoded is charged to ``stats``.
    """

    def __init__(self, path, stats=None):
        self._path = os.fspath(path)
        self._stats = stats if stats is not None else IoStats()
        self._lock = threading.Lock()
        try:
            self._file = open(self._path, "rb")
        except OSError as exc:
            raise StorageError("cannot open TsFile %s: %s"
                               % (self._path, exc)) from exc
        self._validate_magic()

    @property
    def path(self):
        """The file being read."""
        return self._path

    @property
    def stats(self):
        """The I/O accounting sink."""
        return self._stats

    def _validate_magic(self):
        self._file.seek(0)
        head = self._file.read(len(MAGIC))
        if head != MAGIC:
            raise CorruptFileError("%s: bad TsFile magic" % self._path)

    # -- metadata --------------------------------------------------------------------

    def read_metadata(self):
        """Load every chunk's metadata from the tail section."""
        with self._lock:
            self._file.seek(0, os.SEEK_END)
            size = self._file.tell()
            if size < len(MAGIC) + _FOOTER.size:
                raise CorruptFileError("%s: file too small" % self._path)
            self._file.seek(size - _FOOTER.size)
            meta_offset, meta_length, tail_magic = _FOOTER.unpack(
                self._file.read(_FOOTER.size))
            if tail_magic != MAGIC:
                raise CorruptFileError("%s: bad footer magic" % self._path)
            if meta_offset + meta_length + _FOOTER.size > size:
                raise CorruptFileError("%s: footer points past EOF"
                                       % self._path)
            self._file.seek(meta_offset)
            blob = self._file.read(meta_length)
        self._stats.add(bytes_read=meta_length)
        if len(blob) < 4:
            raise CorruptFileError("%s: truncated metadata section" % self._path)
        (count,) = struct.unpack_from("<I", blob)
        offset = 4
        metadata = []
        for _ in range(count):
            meta, offset = ChunkMetadata.from_bytes(blob, offset,
                                                    file_path=self._path)
            metadata.append(meta)
        self._stats.add(metadata_reads=count)
        return metadata

    # -- page reads ------------------------------------------------------------------

    def _read_payload(self, chunk_meta, rel_offset, length):
        with self._lock:
            self._file.seek(chunk_meta.data_offset + rel_offset)
            payload = self._file.read(length)
        if len(payload) != length:
            raise CorruptFileError("%s: truncated page payload" % self._path)
        self._stats.add(bytes_read=length)
        return payload

    def read_page_timestamps(self, chunk_meta, page_index):
        """Decode the time column of one page (counted)."""
        page = chunk_meta.pages[page_index]
        payload = self._read_payload(chunk_meta, page.time_offset,
                                     page.time_length)
        self._stats.add(pages_decoded=1, points_decoded=page.n_points)
        return decode_page(payload, chunk_meta.time_encoding,
                           chunk_meta.compression)

    def read_page_values(self, chunk_meta, page_index):
        """Decode the value column of one page (counted)."""
        page = chunk_meta.pages[page_index]
        payload = self._read_payload(chunk_meta, page.value_offset,
                                     page.value_length)
        self._stats.add(pages_decoded=1, points_decoded=page.n_points)
        return decode_page(payload, chunk_meta.value_encoding,
                           chunk_meta.compression)

    def read_chunk_arrays(self, chunk_meta):
        """Decode every page; returns ``(timestamps, values)``."""
        self._stats.add(chunk_loads=1)
        times = []
        values = []
        for page_index in range(len(chunk_meta.pages)):
            times.append(self.read_page_timestamps(chunk_meta, page_index))
            values.append(self.read_page_values(chunk_meta, page_index))
        if len(times) == 1:
            return times[0], values[0]
        return np.concatenate(times), np.concatenate(values)

    def close(self):
        """Release the underlying file handle."""
        self._file.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()
