"""TsFile: the on-disk container for chunks, after Apache IoTDB's TsFile.

Layout (format v2)::

    magic "TSFLv2\\n\\0"
    per chunk:
        inline header: "CHNK", u32 meta_length, u32 crc32(meta)
        located ChunkMetadata bytes
        chunk data block
    metadata section:  u32 chunk count, then each ChunkMetadata
    footer:            u64 meta offset, u32 meta length, u32 crc32(meta),
                       magic again

The tail metadata section is the fast path — one small read fetches
every chunk's statistics, page directory and step-regression index, the
asymmetry the M4-LSM operator exploits.  The inline per-chunk headers
are the *recovery* path: a file whose process died before ``close()``
has no footer, but every sealed chunk inside it is still reachable by
scanning the headers (:meth:`TsFileReader.salvage_metadata`), so a
crash between WAL rotation and file seal no longer loses acknowledged
points.

Everything persisted is checksummed: the metadata section and footer
carry CRC32s, and each page payload's CRC travels in its directory
entry, verified on read (``verify_checksums``).  v1 (seed) files — no
inline headers, no CRCs, 20-byte footer — remain fully readable; the
two formats are told apart by the magic bytes.  Transient ``EIO`` on
reads is retried with capped exponential backoff
(:func:`repro.storage.faultfs.retry_io`).  All reads are accounted
against an :class:`repro.storage.iostats.IoStats`.
"""

from __future__ import annotations

import os
import struct
import threading
import zlib

import numpy as np

from ..errors import (
    CorruptFileError,
    EncodingError,
    ReadOnlyError,
)
from . import faultfs
from .chunk import ChunkMetadata
from .encoding import decode_page
from .iostats import IoStats

MAGIC = b"TSFLv2\n\0"
MAGIC_V1 = b"TSFLv1\n\0"
CHUNK_MARKER = b"CHNK"
_CHUNK_HEADER = struct.Struct("<4sII")  # marker, meta_length, meta_crc
_FOOTER = struct.Struct("<QII8s")       # meta_offset, meta_len, meta_crc, magic
_FOOTER_V1 = struct.Struct("<QI8s")

FORMAT_V1 = 1
FORMAT_V2 = 2


class TsFileWriter:
    """Sequentially writes chunk data blocks, then seals the file.

    >>> # writer = TsFileWriter("/tmp/x.tsfile")
    >>> # writer.append_chunk(block, metadata); writer.close()
    """

    def __init__(self, path):
        self._path = os.fspath(path)
        self._file = faultfs.fopen(self._path, "wb")
        self._file.write(MAGIC)
        self._offset = len(MAGIC)
        self._metadata = []
        self._closed = False

    @property
    def path(self):
        """Destination file path."""
        return self._path

    def append_chunk(self, data_block, metadata):
        """Write one chunk (inline header + metadata + data block).

        Returns the located metadata.  The inline copy of the metadata
        is what makes the chunk salvageable from an unsealed file.
        """
        if self._closed:
            raise ReadOnlyError("TsFile %s is already sealed" % self._path)
        # ChunkMetadata serializes fixed-width, so the located form is
        # the same length as the trial (unlocated) one.
        meta_length = len(metadata.to_bytes(FORMAT_V2))
        data_offset = self._offset + _CHUNK_HEADER.size + meta_length
        located = metadata.located(self._path, data_offset, len(data_block))
        meta_bytes = located.to_bytes(FORMAT_V2)
        self._file.write(_CHUNK_HEADER.pack(CHUNK_MARKER, meta_length,
                                            zlib.crc32(meta_bytes)))
        self._file.write(meta_bytes)
        self._file.write(data_block)
        # Push the chunk out of the userspace buffer: concurrent readers
        # (pooled TsFileReaders on the still-growing file) can fetch it
        # by offset right away, and a killed process loses at most the
        # chunk currently being appended — never a sealed one.
        self._file.flush()
        self._offset = data_offset + len(data_block)
        self._metadata.append(located)
        return located

    def close(self):
        """Seal the file: write the metadata section and footer.

        Returns the list of located :class:`ChunkMetadata`.
        """
        if self._closed:
            return self._metadata
        meta_offset = self._offset
        blob = bytearray(struct.pack("<I", len(self._metadata)))
        for meta in self._metadata:
            blob += meta.to_bytes(FORMAT_V2)
        self._file.write(blob)
        self._file.write(_FOOTER.pack(meta_offset, len(blob),
                                      zlib.crc32(bytes(blob)), MAGIC))
        self._file.close()
        self._closed = True
        return self._metadata

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()


class TsFileReader:
    """Random-access reader over a sealed (or salvageable) TsFile.

    One reader per file; the storage engine keeps a pool of them, so one
    reader may serve many concurrent queries.  Seek+read pairs on the
    shared file handle are serialized by an internal lock; the expensive
    page decode (numpy + zlib, both GIL-releasing) happens outside it,
    which is what makes the parallel chunk pipeline pay.  Every byte
    fetched and every page decoded is charged to ``stats``.

    ``verify_checksums`` controls the per-payload CRC check on page
    reads (v1 pages carry no CRC and are never checked).  A payload is
    verified once per reader lifetime: TsFiles are immutable once
    sealed, so a page that checked out keeps checking out for as long
    as this handle lives, and repeat queries through a pooled reader
    skip the re-hash (``repro fsck`` always builds fresh readers and
    therefore always re-verifies).  ``on_retry`` is invoked as
    ``on_retry(attempt, exc)`` whenever a transient read error is
    retried.
    """

    #: verified-payload keys kept before the set is reset (bounds the
    #: memory of a very long-lived reader over a huge file).
    VERIFIED_CACHE_MAX = 1 << 20

    def __init__(self, path, stats=None, verify_checksums=True,
                 on_retry=None, retry_attempts=4, retry_base_delay=0.005,
                 retry_max_delay=0.1):
        self._path = os.fspath(path)
        self._stats = stats if stats is not None else IoStats()
        self._verify = verify_checksums
        self._verified = set()
        self._on_retry = on_retry
        self._retry_attempts = retry_attempts
        self._retry_base_delay = retry_base_delay
        self._retry_max_delay = retry_max_delay
        self._lock = threading.Lock()
        try:
            self._file = faultfs.fopen(self._path, "rb")
        except OSError as exc:
            raise CorruptFileError("cannot open TsFile %s: %s"
                                   % (self._path, exc),
                                   path=self._path) from exc
        self._format_version = self._validate_magic()

    @property
    def path(self):
        """The file being read."""
        return self._path

    @property
    def stats(self):
        """The I/O accounting sink."""
        return self._stats

    @property
    def format_version(self):
        """1 for seed-format files, 2 for checksummed files."""
        return self._format_version

    def _validate_magic(self):
        def fetch():
            self._file.seek(0)
            return self._file.read(len(MAGIC))

        head = self._retry(fetch)
        if head == MAGIC:
            return FORMAT_V2
        if head == MAGIC_V1:
            return FORMAT_V1
        raise CorruptFileError("%s: bad TsFile magic" % self._path,
                               path=self._path)

    def _retry(self, fn):
        return faultfs.retry_io(fn, attempts=self._retry_attempts,
                                base_delay=self._retry_base_delay,
                                max_delay=self._retry_max_delay,
                                on_retry=self._on_retry)

    # -- metadata --------------------------------------------------------------------

    def read_metadata(self):
        """Load every chunk's metadata from the tail section."""
        footer = _FOOTER if self._format_version >= FORMAT_V2 else _FOOTER_V1
        magic = MAGIC if self._format_version >= FORMAT_V2 else MAGIC_V1

        def fetch():
            with self._lock:
                self._file.seek(0, os.SEEK_END)
                size = self._file.tell()
                if size < len(magic) + footer.size:
                    raise CorruptFileError("%s: file too small" % self._path,
                                           path=self._path)
                self._file.seek(size - footer.size)
                fields = footer.unpack(self._file.read(footer.size))
                if self._format_version >= FORMAT_V2:
                    meta_offset, meta_length, meta_crc, tail_magic = fields
                else:
                    meta_offset, meta_length, tail_magic = fields
                    meta_crc = None
                if tail_magic != magic:
                    raise CorruptFileError("%s: bad footer magic"
                                           % self._path, path=self._path)
                if meta_offset + meta_length + footer.size > size:
                    raise CorruptFileError("%s: footer points past EOF"
                                           % self._path, path=self._path)
                self._file.seek(meta_offset)
                return self._file.read(meta_length), meta_length, meta_crc

        blob, meta_length, meta_crc = self._retry(fetch)
        self._stats.add(bytes_read=meta_length)
        if len(blob) < max(meta_length, 4):
            raise CorruptFileError("%s: truncated metadata section"
                                   % self._path, path=self._path)
        if meta_crc is not None and zlib.crc32(blob) != meta_crc:
            raise CorruptFileError("%s: metadata section CRC mismatch"
                                   % self._path, path=self._path)
        (count,) = struct.unpack_from("<I", blob)
        offset = 4
        metadata = []
        try:
            for _ in range(count):
                meta, offset = ChunkMetadata.from_bytes(
                    blob, offset, file_path=self._path,
                    format_version=self._format_version)
                metadata.append(meta)
        except (struct.error, ValueError) as exc:
            # v1 blobs are unchecksummed: damage can surface as a parse
            # error rather than a CRC mismatch.  Same verdict.
            raise CorruptFileError("%s: undecodable metadata section: %s"
                                   % (self._path, exc),
                                   path=self._path) from exc
        self._stats.add(metadata_reads=count)
        return metadata

    def salvage_metadata(self):
        """Recover chunk metadata by scanning the inline headers.

        The recovery path for unsealed (crash-torn) v2 files: walks the
        ``CHNK`` headers from the front and returns every chunk whose
        inline metadata passes its CRC and whose data block lies fully
        inside the file.  The scan stops at the first sign of tearing —
        everything before it is intact by checksum.  v1 files have no
        inline headers and yield nothing.
        """
        if self._format_version < FORMAT_V2:
            return []
        out = []
        with self._lock:
            self._file.seek(0, os.SEEK_END)
            size = self._file.tell()
            offset = len(MAGIC)
            while offset + _CHUNK_HEADER.size <= size:
                self._file.seek(offset)
                marker, meta_length, meta_crc = _CHUNK_HEADER.unpack(
                    self._file.read(_CHUNK_HEADER.size))
                if marker != CHUNK_MARKER:
                    break  # metadata section, or torn header bytes
                if offset + _CHUNK_HEADER.size + meta_length > size:
                    break  # metadata itself torn
                meta_bytes = self._file.read(meta_length)
                if zlib.crc32(meta_bytes) != meta_crc:
                    break  # torn or damaged metadata
                meta, _ = ChunkMetadata.from_bytes(
                    meta_bytes, file_path=self._path,
                    format_version=FORMAT_V2)
                if meta.data_offset + meta.data_length > size:
                    break  # data block torn
                out.append(meta)
                offset = meta.data_offset + meta.data_length
            # Tearing can only happen at the tail.  If a *valid* chunk
            # exists beyond the point where the chain broke, the damage
            # is mid-file corruption and silence would lose that chunk:
            # fail loudly instead.
            self._file.seek(offset)
            remainder = self._file.read(size - offset)
        if self._intact_chunk_in(remainder, size):
            raise CorruptFileError(
                "%s: intact chunk found after damaged region at offset %d"
                " — mid-file corruption, not a torn tail"
                % (self._path, offset), path=self._path)
        self._stats.add(bytes_read=sum(len(m.to_bytes()) for m in out))
        return out

    def _intact_chunk_in(self, blob, file_size):
        """Does ``blob`` hold a CRC-valid chunk whose data is in-bounds?

        A valid inline header whose data block runs past EOF is exactly
        what a torn tail looks like, so only a *fully contained* chunk
        counts as proof of mid-file corruption.
        """
        pos = blob.find(CHUNK_MARKER)
        while pos != -1:
            if pos + _CHUNK_HEADER.size <= len(blob):
                _, meta_length, meta_crc = _CHUNK_HEADER.unpack_from(
                    blob, pos)
                start = pos + _CHUNK_HEADER.size
                meta_bytes = blob[start:start + meta_length]
                if (len(meta_bytes) == meta_length
                        and zlib.crc32(meta_bytes) == meta_crc):
                    try:
                        meta, _ = ChunkMetadata.from_bytes(
                            meta_bytes, file_path=self._path,
                            format_version=FORMAT_V2)
                    except Exception:
                        meta = None
                    if meta is not None and (meta.data_offset
                                             + meta.data_length
                                             <= file_size):
                        return True
            pos = blob.find(CHUNK_MARKER, pos + 1)
        return False

    # -- page reads ------------------------------------------------------------------

    def _read_payload(self, chunk_meta, rel_offset, length):
        def fetch():
            with self._lock:
                self._file.seek(chunk_meta.data_offset + rel_offset)
                return self._file.read(length)

        payload = self._retry(fetch)
        if len(payload) != length:
            raise CorruptFileError(
                "%s: truncated page payload" % self._path, path=self._path,
                chunk=(self._path, chunk_meta.data_offset))
        self._stats.add(bytes_read=length)
        return payload

    def _decode(self, chunk_meta, payload, encoding, crc, what,
                rel_offset=None):
        key = (chunk_meta.data_offset, rel_offset)
        if self._verify and crc and key not in self._verified:
            if zlib.crc32(payload) != crc:
                raise CorruptFileError(
                    "%s: %s payload CRC mismatch in chunk @%d"
                    % (self._path, what, chunk_meta.data_offset),
                    path=self._path,
                    chunk=(self._path, chunk_meta.data_offset))
            if len(self._verified) >= self.VERIFIED_CACHE_MAX:
                self._verified.clear()
            self._verified.add(key)
        try:
            return decode_page(payload, encoding, chunk_meta.compression)
        except EncodingError as exc:
            # Undecodable bytes on a v1 page (no CRC to catch it first)
            # or a codec-level failure: attribute it to the chunk so the
            # degraded-read path can quarantine it.
            raise CorruptFileError(
                "%s: undecodable %s payload in chunk @%d: %s"
                % (self._path, what, chunk_meta.data_offset, exc),
                path=self._path,
                chunk=(self._path, chunk_meta.data_offset)) from exc

    def read_page_timestamps(self, chunk_meta, page_index):
        """Decode the time column of one page (counted, CRC-checked)."""
        page = chunk_meta.pages[page_index]
        payload = self._read_payload(chunk_meta, page.time_offset,
                                     page.time_length)
        self._stats.add(pages_decoded=1, points_decoded=page.n_points)
        return self._decode(chunk_meta, payload, chunk_meta.time_encoding,
                            page.time_crc, "page time",
                            rel_offset=page.time_offset)

    def read_page_values(self, chunk_meta, page_index):
        """Decode the value column of one page (counted, CRC-checked)."""
        page = chunk_meta.pages[page_index]
        payload = self._read_payload(chunk_meta, page.value_offset,
                                     page.value_length)
        self._stats.add(pages_decoded=1, points_decoded=page.n_points)
        return self._decode(chunk_meta, payload, chunk_meta.value_encoding,
                            page.value_crc, "page value",
                            rel_offset=page.value_offset)

    def read_chunk_arrays(self, chunk_meta):
        """Decode every page; returns ``(timestamps, values)``."""
        self._stats.add(chunk_loads=1)
        times = []
        values = []
        for page_index in range(len(chunk_meta.pages)):
            times.append(self.read_page_timestamps(chunk_meta, page_index))
            values.append(self.read_page_values(chunk_meta, page_index))
        if len(times) == 1:
            return times[0], values[0]
        return np.concatenate(times), np.concatenate(values)

    def close(self):
        """Release the underlying file handle."""
        self._file.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()
