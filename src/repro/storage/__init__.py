"""LSM-based time series storage, modelled on Apache IoTDB's TsFile layer.

Public surface: the engine, its configuration, the reader trio, deletes,
chunk/page metadata and the merge function.
"""

from .catalog import CatalogFile
from .chunk import ChunkMetadata, write_chunk
from .compaction import compact_all, compact_series
from .config import DEFAULT_CONFIG, StorageConfig
from .deletes import TIME_MAX, TIME_MIN, Delete, DeleteList
from .encoding import Compression, Encoding
from .engine import StorageEngine
from .faultfs import FaultInjector, FaultRule, retry_io
from .fsck import FsckReport, fsck_store
from .iostats import IoStats
from .locks import RWLock
from .memtable import MemTable
from .merge import merge_arrays, merge_reference, merge_to_series
from .mods import ModsFile
from .page import PageMetadata, split_rows
from .parallel import ChunkPipeline, in_worker_thread, serial_map
from .quarantine import QuarantineRegistry
from .readers import DataReader, MergeReader, MetadataReader
from .statistics import Statistics
from .recovery import list_tsfiles, recover_engine_state
from .tsfile import TsFileReader, TsFileWriter
from .versions import VERSION_INFINITY, VersionAllocator
from .wal import WalManager, WriteAheadLog

__all__ = [
    "CatalogFile",
    "ChunkMetadata",
    "ChunkPipeline",
    "Compression",
    "DEFAULT_CONFIG",
    "DataReader",
    "Delete",
    "DeleteList",
    "Encoding",
    "FaultInjector",
    "FaultRule",
    "FsckReport",
    "IoStats",
    "MemTable",
    "MergeReader",
    "MetadataReader",
    "ModsFile",
    "PageMetadata",
    "QuarantineRegistry",
    "RWLock",
    "Statistics",
    "StorageConfig",
    "StorageEngine",
    "TIME_MAX",
    "TIME_MIN",
    "TsFileReader",
    "TsFileWriter",
    "VERSION_INFINITY",
    "VersionAllocator",
    "WalManager",
    "WriteAheadLog",
    "compact_all",
    "compact_series",
    "fsck_store",
    "in_worker_thread",
    "list_tsfiles",
    "retry_io",
    "merge_arrays",
    "merge_reference",
    "merge_to_series",
    "recover_engine_state",
    "serial_map",
    "split_rows",
    "write_chunk",
]
