"""ChunkCache: an LRU cache of decoded pages shared across queries.

Apache IoTDB keeps decoded chunks in a memory-bounded cache so repeated
visualization queries (pan/zoom over the same region) skip decompression.
The reproduction's equivalent is off by default — the paper's latency
numbers are cold-cache per query — but can be enabled through
``StorageConfig.chunk_cache_points`` for interactive workloads.

Capacity is counted in *points* rather than entries so pages of different
sizes are budgeted fairly.

The cache is thread-safe: one internal lock covers lookup, insert and
eviction, so the capacity bound and the hit/miss accounting hold under
concurrent queries (asserted by ``tests/properties``).  Cached arrays
are treated as immutable by every reader, so handing the same array to
two threads is safe.
"""

from __future__ import annotations

import collections
import threading


class ChunkCache:
    """A points-budgeted LRU for decoded page arrays.

    Keys are arbitrary hashables (the readers use
    ``(file, chunk offset, page index, column)``); values are numpy
    arrays whose ``size`` is charged against the capacity.
    """

    def __init__(self, capacity_points, stats=None):
        """``stats``: an optional :class:`IoStats` whose ``cache_hits`` /
        ``cache_misses`` counters mirror this cache's — so benchmarks and
        traces see cache effectiveness through the same counter channel
        as every other I/O cost."""
        if capacity_points <= 0:
            raise ValueError("capacity must be positive")
        self._capacity = int(capacity_points)
        self._entries = collections.OrderedDict()
        self._points = 0
        self._io_stats = stats
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def __len__(self):
        return len(self._entries)

    @property
    def points(self):
        """Points currently cached."""
        return self._points

    @property
    def capacity(self):
        """Maximum points retained."""
        return self._capacity

    def get(self, key):
        """The cached array for ``key`` (refreshing recency), or None."""
        with self._lock:
            try:
                value = self._entries[key]
            except KeyError:
                self.misses += 1
                miss = True
            else:
                self._entries.move_to_end(key)
                self.hits += 1
                miss = False
        if self._io_stats is not None:
            if miss:
                self._io_stats.add(cache_misses=1)
            else:
                self._io_stats.add(cache_hits=1)
        return None if miss else value

    def put(self, key, value):
        """Insert an array, evicting least-recently-used pages to fit.

        An array larger than the whole capacity is not cached at all.
        """
        size = int(value.size)
        if size > self._capacity:
            return
        with self._lock:
            if key in self._entries:
                self._points -= int(self._entries.pop(key).size)
            while self._points + size > self._capacity and self._entries:
                _old_key, old = self._entries.popitem(last=False)
                self._points -= int(old.size)
            self._entries[key] = value
            self._points += size

    def clear(self):
        """Drop every entry (hit/miss counters are kept)."""
        with self._lock:
            self._entries.clear()
            self._points = 0

    def stats(self):
        """Dict of hits, misses, entries and cached points."""
        with self._lock:
            return {"hits": self.hits, "misses": self.misses,
                    "entries": len(self._entries), "points": self._points}
