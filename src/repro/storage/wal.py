"""Write-ahead log: durability for points still buffered in memtables.

Every write lands in the WAL before it is acknowledged; after a flush
turns the buffered points into immutable chunks, the log is rotated.  On
restart, :mod:`repro.storage.recovery` replays any surviving records so
no acknowledged point is lost.

Record layout (little endian, format v2)::

    u32 series_id, i64 timestamp, f64 value, u32 crc32(payload)

The file starts with a magic string.  Torn-tail policy (v2): a *short*
final record — the crash-common case, the OS saw only a prefix of the
last append — is truncated away with a logged warning and every prior
record is recovered.  A full-size record whose CRC does not match is
*corruption*, not a torn tail, and raises :class:`CorruptFileError`
loudly: silently dropping it could lose an acknowledged point while the
bytes after it still parse.  Files written by the v1 (seed) format carry
no checksums and are replayed with the old lenient tail handling.

Rotation and rewrite build the replacement log in a temp file and
``os.replace`` it into place, so a crash at any byte leaves either the
old complete log or the new complete log — never a half-truncated one.
All file I/O goes through :mod:`repro.storage.faultfs` so the crash
torture suite can kill or glitch any individual operation.
"""

from __future__ import annotations

import logging
import os
import re
import struct
import threading
import zlib

from ..errors import CorruptFileError
from . import faultfs

MAGIC = b"WALv2\n\0\0"
MAGIC_V1 = b"WALv1\n\0\0"
_PAYLOAD = struct.Struct("<Iqd")
_CRC = struct.Struct("<I")
RECORD_SIZE = _PAYLOAD.size + _CRC.size
_V1_RECORD = _PAYLOAD

log = logging.getLogger("repro.storage.wal")


def _pack_record(series_id, t, v):
    payload = _PAYLOAD.pack(series_id, int(t), float(v))
    return payload + _CRC.pack(zlib.crc32(payload))


class WriteAheadLog:
    """Append-only point log with rotation.

    ``registry``: an optional :class:`repro.obs.MetricsRegistry`; when
    given, appended records/bytes, syncs, rotations and repaired torn
    tails are counted.
    """

    def __init__(self, path, registry=None):
        from ..obs import NULL_REGISTRY
        registry = registry if registry is not None else NULL_REGISTRY
        self._c_records = registry.counter("wal_records_total")
        self._c_bytes = registry.counter("wal_bytes_total")
        self._c_syncs = registry.counter("wal_syncs_total")
        self._c_rotations = registry.counter("wal_rotations_total")
        self._c_torn = registry.counter("wal_torn_tails_total")
        self._path = os.fspath(path)
        if not os.path.exists(self._path):
            self._start_fresh()
        self._file = faultfs.fopen(self._path, "ab")

    def _start_fresh(self):
        with faultfs.fopen(self._path, "wb") as f:
            f.write(MAGIC)

    @property
    def path(self):
        """Location of the log file."""
        return self._path

    def append(self, series_id, t, v):
        """Log a single point."""
        self._file.write(_pack_record(series_id, t, v))
        self._c_records.inc()
        self._c_bytes.inc(RECORD_SIZE)

    def append_batch(self, series_id, timestamps, values):
        """Log a batch of points with one file write."""
        parts = [_pack_record(series_id, t, v)
                 for t, v in zip(timestamps, values)]
        self._file.write(b"".join(parts))
        self._c_records.inc(len(parts))
        self._c_bytes.inc(RECORD_SIZE * len(parts))

    def sync(self):
        """Flush OS buffers (called before acknowledging writes)."""
        self._file.flush()
        self._c_syncs.inc()

    def _replace_with(self, build):
        """Atomically swap the log for one built by ``build(file)``.

        The append handle is closed first (an O_APPEND handle kept open
        across ``os.replace`` would keep writing to the unlinked inode)
        and reopened on the new file afterwards.  A crash at any point
        leaves either the complete old log or the complete new one.
        """
        self._file.close()
        tmp = self._path + ".tmp"
        with faultfs.fopen(tmp, "wb") as f:
            build(f)
            f.flush()
        faultfs.replace(tmp, self._path)
        self._file = faultfs.fopen(self._path, "ab")

    def rotate(self):
        """Drop all records: everything logged so far is now in chunks."""
        self._replace_with(lambda f: f.write(MAGIC))
        self._c_rotations.inc()

    def close(self):
        """Release the file handle."""
        self._file.close()

    def rewrite(self, series_id, timestamps, values):
        """Replace the log's contents with exactly these points.

        Used after a partial flush: the drained prefix left the log, the
        still-buffered remainder is re-logged, so the log always equals
        the memtable's contents.
        """
        def build(f):
            f.write(MAGIC)
            f.write(b"".join(_pack_record(series_id, t, v)
                             for t, v in zip(timestamps, values)))

        self._replace_with(build)
        self._c_records.inc(len(timestamps))
        self.sync()

    def replay(self, repair=True, report=None):
        """Yield ``(series_id, t, v)`` for every complete record.

        A *short* final record (crash mid-append) is a torn tail: it is
        logged, counted, truncated away when ``repair`` is true, and all
        prior records are yielded.  A full-size record with a CRC
        mismatch is mid-file corruption and raises
        :class:`CorruptFileError`.  ``report``: optional callable
        receiving a dict per issue found (used by ``repro fsck``).
        """
        if not self._file.closed:
            self.sync()
        size = os.path.getsize(self._path)
        with faultfs.fopen(self._path, "rb") as f:
            head = f.read(len(MAGIC))
            if head == MAGIC:
                record_size, checked = RECORD_SIZE, True
            elif head == MAGIC_V1:
                record_size, checked = _V1_RECORD.size, False
            elif MAGIC.startswith(head) or MAGIC_V1.startswith(head):
                # Crash while the header itself was being written: an
                # empty log, by construction holding zero records.
                self._torn(len(head), 0, repair, report,
                           "torn WAL header")
                return
            else:
                raise CorruptFileError("%s: bad WAL magic" % self._path,
                                       path=self._path)
            offset = len(head)
            while True:
                raw = f.read(record_size)
                if not raw:
                    return
                if len(raw) < record_size:
                    self._torn(offset, size - offset, repair, report,
                               "torn WAL record")
                    return
                if checked:
                    payload, (crc,) = raw[:_PAYLOAD.size], _CRC.unpack(
                        raw[_PAYLOAD.size:])
                    if zlib.crc32(payload) != crc:
                        raise CorruptFileError(
                            "%s: WAL record CRC mismatch at offset %d"
                            % (self._path, offset), path=self._path)
                else:
                    payload = raw
                series_id, t, v = _PAYLOAD.unpack(payload)
                offset += record_size
                yield series_id, t, v

    def _torn(self, keep_bytes, torn_bytes, repair, report, what):
        log.warning("%s: %s (%d bytes) — recovering prior records",
                    self._path, what, torn_bytes)
        self._c_torn.inc()
        if report is not None:
            report({"file": self._path, "severity": "warning",
                    "issue": what, "torn_bytes": torn_bytes})
        if repair:
            if keep_bytes < len(MAGIC):
                self._start_fresh()
            else:
                os.truncate(self._path, keep_bytes)


class WalManager:
    """One WAL segment per series, rotated at that series' flush.

    Per-series segments make the invariant simple and crash-safe: a
    segment always holds exactly the points currently buffered in the
    series' memtable.  Flushing a series empties (or rewrites) only its
    own segment, so replay after a crash never re-ingests points that
    already live in chunks — which would resurrect deleted data by
    giving old points fresh versions.
    """

    SEGMENT_RE = re.compile(r"^wal-(\d{6})\.log$")

    def __init__(self, data_dir, registry=None):
        self._data_dir = os.fspath(data_dir)
        self._registry = registry
        self._segments = {}
        self._lock = threading.Lock()

    def segment(self, series_id):
        """The WAL segment for a series (created on first use).

        Creation is serialized; use of the returned segment is guarded
        by the owning series' write lock, not here.
        """
        with self._lock:
            if series_id not in self._segments:
                path = os.path.join(self._data_dir,
                                    "wal-%06d.log" % series_id)
                self._segments[series_id] = WriteAheadLog(path,
                                                          self._registry)
            return self._segments[series_id]

    def segment_paths(self):
        """``(series_id, path)`` for every on-disk segment, in id order."""
        out = []
        for entry in sorted(os.listdir(self._data_dir)):
            match = self.SEGMENT_RE.match(entry)
            if match:
                out.append((int(match.group(1)),
                            os.path.join(self._data_dir, entry)))
        return out

    def replay_all(self, repair=True, report=None):
        """Yield ``(series_id, t, v)`` across every on-disk segment."""
        for series_id, _path in self.segment_paths():
            yield from self.segment(series_id).replay(repair=repair,
                                                      report=report)

    def close(self):
        """Release every segment's file handle."""
        with self._lock:
            for segment in self._segments.values():
                segment.close()
            self._segments.clear()
