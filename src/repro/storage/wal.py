"""Write-ahead log: durability for points still buffered in memtables.

Every write lands in the WAL before it is acknowledged; after a flush
turns the buffered points into immutable chunks, the log is rotated.  On
restart, :mod:`repro.storage.recovery` replays any surviving records so
no acknowledged point is lost.

Record layout (little endian)::

    u32 series_id, i64 timestamp, f64 value

The file starts with a magic string.  A torn tail (partial record from a
crash mid-write) is tolerated on replay: complete records before it are
recovered, the torn bytes are dropped.
"""

from __future__ import annotations

import os
import re
import struct
import threading

from ..errors import CorruptFileError

MAGIC = b"WALv1\n\0\0"
_RECORD = struct.Struct("<Iqd")


class WriteAheadLog:
    """Append-only point log with rotation.

    ``registry``: an optional :class:`repro.obs.MetricsRegistry`; when
    given, appended records/bytes, syncs and rotations are counted.
    """

    def __init__(self, path, registry=None):
        from ..obs import NULL_REGISTRY
        registry = registry if registry is not None else NULL_REGISTRY
        self._c_records = registry.counter("wal_records_total")
        self._c_bytes = registry.counter("wal_bytes_total")
        self._c_syncs = registry.counter("wal_syncs_total")
        self._c_rotations = registry.counter("wal_rotations_total")
        self._path = os.fspath(path)
        if not os.path.exists(self._path):
            self._start_fresh()
        self._file = open(self._path, "ab")

    def _start_fresh(self):
        with open(self._path, "wb") as f:
            f.write(MAGIC)

    @property
    def path(self):
        """Location of the log file."""
        return self._path

    def append(self, series_id, t, v):
        """Log a single point."""
        self._file.write(_RECORD.pack(series_id, int(t), float(v)))
        self._c_records.inc()
        self._c_bytes.inc(_RECORD.size)

    def append_batch(self, series_id, timestamps, values):
        """Log a batch of points with one file write."""
        parts = [_RECORD.pack(series_id, int(t), float(v))
                 for t, v in zip(timestamps, values)]
        self._file.write(b"".join(parts))
        self._c_records.inc(len(parts))
        self._c_bytes.inc(_RECORD.size * len(parts))

    def sync(self):
        """Flush OS buffers (called before acknowledging writes)."""
        self._file.flush()
        self._c_syncs.inc()

    def rotate(self):
        """Drop all records: everything logged so far is now in chunks."""
        self._file.close()
        self._start_fresh()
        self._file = open(self._path, "ab")
        self._c_rotations.inc()

    def close(self):
        """Release the file handle."""
        self._file.close()

    def rewrite(self, series_id, timestamps, values):
        """Replace the log's contents with exactly these points.

        Used after a partial flush: the drained prefix left the log, the
        still-buffered remainder is re-logged, so the log always equals
        the memtable's contents.
        """
        self._file.close()
        self._start_fresh()
        self._file = open(self._path, "ab")
        self.append_batch(series_id, timestamps, values)
        self.sync()

    def replay(self):
        """Yield ``(series_id, t, v)`` for every complete record.

        A torn final record (crash mid-append) is silently dropped; any
        other structural damage raises :class:`CorruptFileError`.
        """
        self.sync()
        with open(self._path, "rb") as f:
            head = f.read(len(MAGIC))
            if head != MAGIC:
                raise CorruptFileError("%s: bad WAL magic" % self._path)
            while True:
                raw = f.read(_RECORD.size)
                if not raw:
                    return
                if len(raw) < _RECORD.size:
                    return  # torn tail from a crash: drop it
                series_id, t, v = _RECORD.unpack(raw)
                yield series_id, t, v


class WalManager:
    """One WAL segment per series, rotated at that series' flush.

    Per-series segments make the invariant simple and crash-safe: a
    segment always holds exactly the points currently buffered in the
    series' memtable.  Flushing a series empties (or rewrites) only its
    own segment, so replay after a crash never re-ingests points that
    already live in chunks — which would resurrect deleted data by
    giving old points fresh versions.
    """

    def __init__(self, data_dir, registry=None):
        self._data_dir = os.fspath(data_dir)
        self._registry = registry
        self._segments = {}
        self._lock = threading.Lock()

    def segment(self, series_id):
        """The WAL segment for a series (created on first use).

        Creation is serialized; use of the returned segment is guarded
        by the owning series' write lock, not here.
        """
        with self._lock:
            if series_id not in self._segments:
                path = os.path.join(self._data_dir,
                                    "wal-%06d.log" % series_id)
                self._segments[series_id] = WriteAheadLog(path,
                                                          self._registry)
            return self._segments[series_id]

    def replay_all(self):
        """Yield ``(series_id, t, v)`` across every on-disk segment."""
        pattern = re.compile(r"^wal-(\d{6})\.log$")
        for entry in sorted(os.listdir(self._data_dir)):
            match = pattern.match(entry)
            if not match:
                continue
            series_id = int(match.group(1))
            yield from self.segment(series_id).replay()

    def close(self):
        """Release every segment's file handle."""
        with self._lock:
            for segment in self._segments.values():
                segment.close()
            self._segments.clear()
