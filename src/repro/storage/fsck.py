"""``repro fsck``: walk a store and verify every checksum.

Opens no engine — fsck operates on the files directly, so it works on a
store too damaged to recover, and never mutates anything unless asked
to ``quarantine`` the chunks it finds damaged.

Classification follows the storage layer's failure policy:

* **warnings** — recoverable damage: torn tails on the WAL/mods/catalog,
  unsealed TsFiles readable through their inline headers, empty file
  stubs, unreadable best-effort JSON (obs, quarantine registry);
* **errors** — data-affecting corruption: checksum mismatches, bad
  magic, undecodable pages, chunks referencing unknown series.

The CLI exits non-zero iff any *error* was found.
"""

from __future__ import annotations

import dataclasses
import json
import os

from ..errors import CorruptFileError, StorageError
from .catalog import CatalogFile
from .mods import ModsFile
from .quarantine import FILENAME as QUARANTINE_FILENAME
from .quarantine import QuarantineRegistry
from .recovery import is_torn_stub, list_tsfiles
from .tsfile import TsFileReader
from .wal import WalManager, WriteAheadLog

OBS_FILENAME = "obs.json"


@dataclasses.dataclass
class FsckReport:
    """Everything one fsck pass found."""

    data_dir: str
    issues: list = dataclasses.field(default_factory=list)
    files_checked: int = 0
    chunks_checked: int = 0
    chunks_damaged: int = 0
    quarantined: int = 0

    def add(self, severity, path, issue, **details):
        """Record one finding."""
        entry = {"severity": severity,
                 "file": os.path.basename(os.fspath(path)),
                 "issue": issue}
        entry.update(details)
        self.issues.append(entry)

    @property
    def errors(self):
        """Data-affecting findings (non-zero exit)."""
        return [i for i in self.issues if i["severity"] == "error"]

    @property
    def warnings(self):
        """Recoverable findings (tearing, best-effort files)."""
        return [i for i in self.issues if i["severity"] == "warning"]

    @property
    def clean(self):
        """True when no error-severity issue was found."""
        return not self.errors

    def as_dict(self):
        """JSON-able summary (the ``--json`` CLI output)."""
        return {
            "data_dir": self.data_dir,
            "clean": self.clean,
            "files_checked": self.files_checked,
            "chunks_checked": self.chunks_checked,
            "chunks_damaged": self.chunks_damaged,
            "quarantined": self.quarantined,
            "errors": self.errors,
            "warnings": self.warnings,
        }

    def render(self):
        """Human-readable report text."""
        lines = ["fsck %s: %d file(s), %d chunk(s) checked"
                 % (self.data_dir, self.files_checked,
                    self.chunks_checked)]
        for issue in self.issues:
            detail = {k: v for k, v in issue.items()
                      if k not in ("severity", "file", "issue")}
            suffix = (" (%s)" % ", ".join("%s=%s" % kv
                                          for kv in sorted(detail.items()))
                      if detail else "")
            lines.append("  [%s] %s: %s%s" % (issue["severity"],
                                              issue["file"],
                                              issue["issue"], suffix))
        if self.clean:
            lines.append("clean: every checksum verified")
        else:
            lines.append("DAMAGED: %d error(s), %d warning(s)"
                         % (len(self.errors), len(self.warnings)))
        return "\n".join(lines)


def _check_log(report, path, read_records):
    """Drain one record log, folding its issues into the report."""
    report.files_checked += 1

    def on_issue(entry):
        report.add(entry.get("severity", "warning"), entry["file"],
                   entry["issue"], torn_bytes=entry.get("torn_bytes"))

    try:
        return list(read_records(on_issue))
    except CorruptFileError as exc:
        report.add("error", path, str(exc))
        return None


def _check_json(report, path, label):
    if not os.path.exists(path):
        return
    report.files_checked += 1
    try:
        with open(path, "rb") as f:
            json.loads(f.read().decode("utf-8"))
    except (OSError, ValueError) as exc:
        report.add("warning", path, "unreadable %s: %s" % (label, exc))


def _check_tsfile(report, path, known_series, verify_pages, registry):
    report.files_checked += 1
    if is_torn_stub(path):
        report.add("warning", path, "empty torn TsFile stub")
        return
    try:
        reader = TsFileReader(path, verify_checksums=True)
    except StorageError as exc:
        report.add("error", path, str(exc))
        return
    with reader:
        try:
            metadata = reader.read_metadata()
        except CorruptFileError as exc:
            if reader.format_version < 2:
                report.add("error", path, str(exc))
                return
            try:
                metadata = reader.salvage_metadata()
            except CorruptFileError as salvage_exc:
                report.add("error", path, str(salvage_exc))
                return
            report.add("warning", path,
                       "no usable footer; %d chunk(s) salvaged from "
                       "inline headers" % len(metadata))
        for meta in metadata:
            report.chunks_checked += 1
            if known_series is not None \
                    and meta.series_id not in known_series:
                report.add("error", path,
                           "chunk for unknown series id %d"
                           % meta.series_id,
                           data_offset=meta.data_offset)
                continue
            if not verify_pages:
                continue
            try:
                reader.read_chunk_arrays(meta)
            except StorageError as exc:
                report.chunks_damaged += 1
                report.add("error", path, str(exc),
                           data_offset=meta.data_offset,
                           series_id=meta.series_id,
                           start_time=int(meta.start_time),
                           end_time=int(meta.end_time))
                if registry is not None:
                    if registry.add_meta(meta, reason=str(exc)):
                        report.quarantined += 1


def fsck_store(data_dir, quarantine=False, verify_pages=True):
    """Verify every checksum in a store; returns an :class:`FsckReport`.

    ``quarantine``: record damaged chunks in the store's quarantine
    registry so subsequent degraded reads skip them.  ``verify_pages``:
    read and CRC-check every page payload (the expensive part; without
    it only magics, metadata sections and record logs are verified).
    """
    data_dir = os.fspath(data_dir)
    if not os.path.isdir(data_dir):
        raise StorageError("no such data directory: %s" % data_dir)
    report = FsckReport(data_dir=data_dir)

    # 1. Catalog: collect series ids for referential checks.
    known_series = None
    catalog_path = os.path.join(data_dir, "catalog.meta")
    if os.path.exists(catalog_path):
        catalog = CatalogFile(catalog_path)
        records = _check_log(
            report, catalog_path,
            lambda cb: catalog.read_all(repair=False, report=cb))
        if records is not None:
            known_series = {series_id for series_id, _name in records}

    # 2. Mods log.
    mods_path = os.path.join(data_dir, "deletes.mods")
    if os.path.exists(mods_path):
        mods = ModsFile(mods_path)
        records = _check_log(
            report, mods_path,
            lambda cb: mods.read_all(repair=False, report=cb))
        if records is not None and known_series is not None:
            for series_id, _delete in records:
                if series_id not in known_series:
                    report.add("error", mods_path,
                               "delete for unknown series id %d"
                               % series_id)

    # 3. WAL segments.
    for series_id, path in WalManager(data_dir).segment_paths():
        wal = WriteAheadLog(path)
        try:
            records = _check_log(
                report, path,
                lambda cb, w=wal: w.replay(repair=False, report=cb))
        finally:
            wal.close()
        if records is not None and known_series is not None \
                and any(sid not in known_series for sid, _t, _v in records):
            report.add("error", path,
                       "WAL references unknown series id")

    # 4. TsFiles (chunk metadata + every page payload).
    registry = QuarantineRegistry(data_dir) if quarantine else None
    for _seq, path in list_tsfiles(data_dir):
        _check_tsfile(report, path, known_series, verify_pages, registry)

    # 5. Best-effort JSON sidecars.
    _check_json(report, os.path.join(data_dir, OBS_FILENAME),
                "observability snapshot")
    _check_json(report, os.path.join(data_dir, QUARANTINE_FILENAME),
                "quarantine registry")

    # 6. Tile cache snapshot (derived data: damage is never an error —
    # the cache silently recomputes — but fsck surfaces it).
    from ..core.tiles_io import FILENAME as TILES_FILENAME
    from ..core.tiles_io import load_tiles
    tiles_path = os.path.join(data_dir, TILES_FILENAME)
    if os.path.exists(tiles_path):
        report.files_checked += 1
        _entries, tile_warnings = load_tiles(tiles_path, None, None)
        for warning in tile_warnings:
            report.add("warning", tiles_path,
                       warning.replace("%s: " % tiles_path, "", 1))
    return report
