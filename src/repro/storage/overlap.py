"""Interval-overlap analysis over chunk metadata.

"Contested" chunks are those whose statistics cannot be trusted in
isolation: their time interval intersects another chunk's (a newer chunk
may overwrite their points) or a delete range (some points may be gone).
Both the M4-LSM fused fast path and the metadata-accelerated aggregation
consult this set; everything in it goes through the slow, exact path.

The overlap sweep marks *every* member of *every* overlapping pair: the
chunks are scanned in start-time order with an active set of not-yet-
expired intervals, and each incoming chunk marks itself plus all active
chunks it intersects.  (A naive adjacent-pair comparison misses pairs
separated by a short chunk in the sort order.)
"""

from __future__ import annotations

import heapq


def contested_versions(chunks, deletes=()):
    """Versions of chunks overlapping another chunk or any delete.

    Args:
        chunks: iterable of ChunkMetadata.
        deletes: iterable of Delete; only deletes newer than a chunk can
            remove its points, so older ones do not contest it.
    Returns:
        a set of version numbers.
    """
    contested = set()
    ordered = sorted(chunks, key=lambda m: m.start_time)

    active = []  # heap of (end_time, version)
    for meta in ordered:
        while active and active[0][0] < meta.start_time:
            heapq.heappop(active)
        if active:
            contested.add(meta.version)
            for _end, version in active:
                contested.add(version)
        heapq.heappush(active, (meta.end_time, meta.version))

    for meta in ordered:
        if meta.version in contested:
            continue
        for delete in deletes:
            if (delete.version > meta.version
                    and delete.t_start <= meta.end_time
                    and delete.t_end >= meta.start_time):
                contested.add(meta.version)
                break
    return contested
