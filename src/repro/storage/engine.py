"""The LSM storage engine: writes, flushes, deletes, TsFile management.

A miniature of Apache IoTDB's storage layer, faithful to the properties
the paper's experiments exercise:

* writes buffer in a per-series :class:`MemTable` and flush into
  read-only chunks of ``avg_series_point_number_threshold`` points;
* out-of-order writes produce chunks with overlapping time intervals —
  overlap is resolved at read time by version numbers, never by rewriting;
* deletes append to a mods log and are applied at read time;
* chunk metadata (statistics, page directory, step-regression index) is
  kept in TsFile tail sections and mirrored in memory once sealed;
* compaction exists but is **off by default**, matching the paper's
  Table 4 (``NO_COMPACTION``).
"""

from __future__ import annotations

import os

from ..errors import SeriesNotFoundError, StorageError
from .cache import ChunkCache
from .catalog import CatalogFile
from .chunk import write_chunk
from .config import DEFAULT_CONFIG
from .deletes import Delete, DeleteList
from .iostats import IoStats
from .memtable import MemTable
from .mods import ModsFile
from .readers import DataReader, MetadataReader
from .tsfile import TsFileReader, TsFileWriter
from .versions import VersionAllocator
from .wal import WalManager


class SeriesState:
    """Per-series bookkeeping inside the engine."""

    def __init__(self, series_id, name):
        self.series_id = series_id
        self.name = name
        self.memtable = MemTable()
        self.chunks = []          # sealed ChunkMetadata, version order
        self.deletes = DeleteList()
        self.points_written = 0


class StorageEngine:
    """An LSM-based store for multiple time series.

    >>> # engine = StorageEngine("/tmp/db")
    >>> # engine.create_series("root.sg.speed")
    >>> # engine.write_batch("root.sg.speed", ts, vs); engine.flush_all()
    """

    def __init__(self, data_dir, config=DEFAULT_CONFIG, stats=None):
        self._data_dir = os.fspath(data_dir)
        os.makedirs(self._data_dir, exist_ok=True)
        self._config = config
        self._stats = stats if stats is not None else IoStats()
        self._versions = VersionAllocator()
        self._series = {}
        self._series_by_id = {}
        self._next_series_id = 1
        self._writer = None
        self._writer_chunks = 0
        self._file_seq = 0
        self._readers = {}
        self._mods = ModsFile(os.path.join(self._data_dir, "deletes.mods"))
        self._catalog = CatalogFile(os.path.join(self._data_dir,
                                                 "catalog.meta"))
        self._wal = WalManager(self._data_dir) if config.enable_wal \
            else None
        self._chunk_cache = ChunkCache(config.chunk_cache_points) \
            if config.chunk_cache_points > 0 else None
        self.recovery_summary = None
        if any(True for _ in self._catalog.read_all()):
            from .recovery import recover_engine_state
            self.recovery_summary = recover_engine_state(self)

    # -- schema ---------------------------------------------------------------------

    @property
    def config(self):
        """The engine's :class:`StorageConfig`."""
        return self._config

    @property
    def stats(self):
        """Shared I/O counters for this engine and its readers."""
        return self._stats

    @property
    def data_dir(self):
        """Directory holding TsFiles and the mods log."""
        return self._data_dir

    def create_series(self, name):
        """Register a series; returns its id.  Idempotent, durable."""
        if name in self._series:
            return self._series[name].series_id
        series_id = self._next_series_id
        self._next_series_id += 1
        state = SeriesState(series_id, name)
        self._series[name] = state
        self._series_by_id[series_id] = state
        self._catalog.append(series_id, name)
        return series_id

    def _register_recovered_series(self, series_id, name):
        """Recovery hook: re-register a series read from the catalog."""
        state = SeriesState(series_id, name)
        self._series[name] = state
        self._series_by_id[series_id] = state
        self._next_series_id = max(self._next_series_id, series_id + 1)
        return state

    def _restore_counters(self, max_version, max_file_seq):
        """Recovery hook: continue version/file numbering after restart."""
        self._versions = VersionAllocator(start=max_version + 1)
        self._file_seq = max_file_seq

    def series_names(self):
        """All registered series names."""
        return list(self._series)

    def _state(self, name):
        try:
            return self._series[name]
        except KeyError:
            raise SeriesNotFoundError("unknown series %r" % name) from None

    # -- writes ------------------------------------------------------------------------

    def write(self, name, t, v):
        """Insert one point (auto-flushing at the threshold)."""
        state = self._state(name)
        if self._wal is not None:
            self._wal.segment(state.series_id).append(state.series_id,
                                                      int(t), float(v))
        state.memtable.append(int(t), float(v))
        state.points_written += 1
        self._maybe_flush(state)

    def write_batch(self, name, timestamps, values):
        """Insert a batch of points in any time order."""
        state = self._state(name)
        if self._wal is not None:
            segment = self._wal.segment(state.series_id)
            segment.append_batch(state.series_id, timestamps, values)
            segment.sync()
        before = len(state.memtable)
        state.memtable.append_batch(timestamps, values)
        state.points_written += len(state.memtable) - before
        self._maybe_flush(state)

    def delete(self, name, t_start, t_end):
        """Delete the closed time range ``[t_start, t_end]`` (Def. 2.5).

        Points still buffered in the memtable are flushed first so the
        versioned delete unambiguously orders after them, mirroring
        IoTDB's flush-before-delete on the affected series.
        """
        state = self._state(name)
        if state.memtable:
            self.flush(name)
        delete = Delete(int(t_start), int(t_end), self._versions.next())
        state.deletes.add(delete)
        self._mods.append(state.series_id, delete)
        return delete

    def _maybe_flush(self, state):
        threshold = self._config.avg_series_point_number_threshold
        flushed = False
        while len(state.memtable) >= threshold:
            t, v = state.memtable.drain_prefix(threshold)
            self._seal_chunk(state, t, v)
            flushed = True
        if flushed:
            self._checkpoint_wal(state)

    def flush(self, name):
        """Flush a series' memtable into a final (possibly smaller) chunk."""
        state = self._state(name)
        if not state.memtable:
            return
        t, v = state.memtable.drain()
        self._seal_chunk(state, t, v)
        self._checkpoint_wal(state)

    def _checkpoint_wal(self, state):
        """Make the series' WAL segment equal its memtable contents.

        After a full flush the segment rotates empty; after a partial
        (threshold) flush the still-buffered remainder is re-logged.
        """
        if self._wal is None:
            return
        segment = self._wal.segment(state.series_id)
        if not state.memtable:
            segment.rotate()
        else:
            segment.rewrite(state.series_id, *state.memtable.snapshot())

    def flush_all(self):
        """Flush every series and seal the active TsFile so that all data
        is query-visible (each flush checkpoints its WAL segment)."""
        for name in self._series:
            self.flush(name)
        self._seal_active_file()

    # -- TsFile management ---------------------------------------------------------------

    def _seal_chunk(self, state, timestamps, values):
        if timestamps.size == 0:
            return
        version = self._versions.next()
        block, metadata = write_chunk(state.series_id, version, timestamps,
                                      values, self._config)
        if self._writer is None:
            self._writer = TsFileWriter(self._next_file_path())
            self._writer_chunks = 0
        located = self._writer.append_chunk(block, metadata)
        state.chunks.append(located)
        self._writer_chunks += 1
        if self._writer_chunks >= self._config.chunks_per_tsfile:
            self._seal_active_file()

    def _next_file_path(self):
        self._file_seq += 1
        return os.path.join(self._data_dir, "%06d.tsfile" % self._file_seq)

    def _seal_active_file(self):
        if self._writer is not None:
            self._writer.close()
            self._writer = None
            self._writer_chunks = 0

    def tsfile_reader(self, path):
        """Pooled :class:`TsFileReader` for a sealed file."""
        if path not in self._readers:
            self._readers[path] = TsFileReader(path, self._stats)
        return self._readers[path]

    # -- query surface -----------------------------------------------------------------

    def chunks_for(self, name):
        """Sealed chunk metadata for a series (version order).

        Raises if the series still has buffered points — call
        :meth:`flush_all` before querying.
        """
        state = self._state(name)
        if state.memtable:
            raise StorageError(
                "series %r has unflushed points; call flush_all() first"
                % name)
        return list(state.chunks)

    def deletes_for(self, name):
        """The series' :class:`DeleteList`."""
        return self._state(name).deletes

    def metadata_reader(self, name):
        """A :class:`MetadataReader` over the series' sealed chunks."""
        return MetadataReader(self.chunks_for(name), self._stats)

    @property
    def chunk_cache(self):
        """The shared decoded-page cache (None when disabled)."""
        return self._chunk_cache

    def data_reader(self):
        """A fresh :class:`DataReader`.

        Each reader has its own per-query decoded-page map; when the
        engine's shared :class:`ChunkCache` is enabled it backs all
        readers, so repeated queries skip decoding.
        """
        return DataReader(self.tsfile_reader, self._stats,
                          shared_cache=self._chunk_cache)

    def total_points(self, name):
        """Latest-point count of the merged series (loads everything)."""
        from .merge import merge_arrays  # local import to avoid cycle noise
        reader = self.data_reader()
        chunks = [(*reader.load_chunk(meta), meta.version)
                  for meta in self.chunks_for(name)]
        t, _v = merge_arrays(chunks, self.deletes_for(name))
        return int(t.size)

    def close(self):
        """Seal the active file and release every reader and the WAL.

        Buffered points stay in the WAL (not flushed), so a reopened
        engine recovers them — closing is not an implicit flush.
        """
        self._seal_active_file()
        for reader in self._readers.values():
            reader.close()
        self._readers.clear()
        if self._wal is not None:
            self._wal.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()
