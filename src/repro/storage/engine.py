"""The LSM storage engine: writes, flushes, deletes, TsFile management.

A miniature of Apache IoTDB's storage layer, faithful to the properties
the paper's experiments exercise:

* writes buffer in a per-series :class:`MemTable` and flush into
  read-only chunks of ``avg_series_point_number_threshold`` points;
* out-of-order writes produce chunks with overlapping time intervals —
  overlap is resolved at read time by version numbers, never by rewriting;
* deletes append to a mods log and are applied at read time;
* chunk metadata (statistics, page directory, step-regression index) is
  kept in TsFile tail sections and mirrored in memory once sealed;
* compaction exists but is **off by default**, matching the paper's
  Table 4 (``NO_COMPACTION``).

The engine is safe for concurrent use from many threads.  The lock
hierarchy (see DESIGN.md § Concurrency model) is two-level: a
reader/writer lock per series guards that series' memtable, chunk list
and delete list; a single engine lock guards cross-series state (the
catalog, version allocator, active TsFile writer, reader pool).  Series
locks are always taken before the engine lock, never after, so the two
levels cannot deadlock.  ``write_batch``/``flush``/``delete``/query
interleavings are linearizable per series: each takes effect atomically
at the moment its series write lock (or read lock, for queries) is
held, and a query sees exactly the chunks of the committed prefix.
"""

from __future__ import annotations

import json
import logging
import os
import threading

from ..errors import SeriesNotFoundError, StorageError
from ..obs import MetricsRegistry, SlowQueryLog, TraceStore, Tracer
from . import faultfs
from .cache import ChunkCache
from .catalog import CatalogFile
from .chunk import write_chunk
from .config import DEFAULT_CONFIG
from .deletes import Delete, DeleteList
from .iostats import IoStats
from .locks import LockWaitObs, RWLock
from .memtable import MemTable
from .mods import ModsFile
from .parallel import ChunkPipeline, serial_map
from .quarantine import QuarantineRegistry
from .readers import DataReader, MetadataReader
from .tsfile import TsFileReader, TsFileWriter
from .versions import VersionAllocator
from .wal import WalManager

log = logging.getLogger("repro.storage.engine")


class SeriesState:
    """Per-series bookkeeping inside the engine.

    ``lock`` is the series' reader/writer lock: writes, flushes and
    deletes hold the write side; queries snapshot chunk/delete state
    under the read side.  When the engine passes its registry, every
    acquisition wait lands in ``lock_wait_seconds{series,side}`` (and,
    inside request traces, as ``lock.wait`` spans).
    """

    def __init__(self, series_id, name, metrics=None):
        self.series_id = series_id
        self.name = name
        obs = LockWaitObs(metrics, name) if metrics is not None else None
        self.lock = RWLock(obs=obs)
        self.memtable = MemTable()
        self.chunks = []          # sealed ChunkMetadata, version order
        self.deletes = DeleteList()
        self.points_written = 0
        #: Upper bound on every timestamp the series holds; None until
        #: first needed (lazy — recovery leaves it unset).  Used to
        #: classify writes as tail appends for incremental tile repair.
        self.max_time = None


class StorageEngine:
    """An LSM-based store for multiple time series.

    >>> # engine = StorageEngine("/tmp/db")
    >>> # engine.create_series("root.sg.speed")
    >>> # engine.write_batch("root.sg.speed", ts, vs); engine.flush_all()
    """

    #: File the observability snapshot persists to inside ``data_dir``.
    OBS_FILE = "obs.json"

    def __init__(self, data_dir, config=DEFAULT_CONFIG, stats=None):
        self._data_dir = os.fspath(data_dir)
        os.makedirs(self._data_dir, exist_ok=True)
        self._config = config
        self._stats = stats if stats is not None else IoStats()
        self._metrics = MetricsRegistry(enabled=config.metrics_enabled)
        self._tracer = Tracer(stats=self._stats, registry=self._metrics,
                              enabled=config.metrics_enabled)
        self._slow_log = SlowQueryLog(config.slow_query_seconds,
                                      config.slow_query_log_size)
        self._traces = TraceStore(config.trace_capacity,
                                  config.trace_sample_every,
                                  config.slow_query_seconds)
        self._io_base = IoStats()  # counters persisted by prior sessions
        self._load_obs_snapshot()
        # Engine-level lock: catalog, versions, active writer, reader
        # pool, close/persist.  Reentrant, and ordered AFTER any series
        # lock (never acquire a series lock while holding it).
        self._lock = threading.RLock()
        self._versions = VersionAllocator()
        self._series = {}
        self._series_by_id = {}
        self._next_series_id = 1
        self._writer = None
        self._writer_chunks = 0
        self._file_seq = 0
        self._readers = {}
        self._closed = False
        self._pipeline = ChunkPipeline(config.parallelism) \
            if config.parallelism > 1 else None
        self._mods = ModsFile(os.path.join(self._data_dir, "deletes.mods"))
        self._catalog = CatalogFile(os.path.join(self._data_dir,
                                                 "catalog.meta"))
        self._wal = WalManager(self._data_dir, self._metrics) \
            if config.enable_wal else None
        self._chunk_cache = ChunkCache(config.chunk_cache_points,
                                       stats=self._stats) \
            if config.chunk_cache_points > 0 else None
        self._quarantine = QuarantineRegistry(self._data_dir,
                                              self._metrics)
        #: Replication log (attach_replication): when set, every
        #: acknowledged mutation also appends a replication frame,
        #: under the same series write lock as the mutation itself so
        #: per-series frame order equals apply order.
        self._replication = None
        self._tile_cache = None
        if config.tile_cache_bytes > 0:
            from ..core.tiles import TileCache
            self._tile_cache = TileCache(config.tile_cache_bytes,
                                         config.tile_cache_spans,
                                         metrics=self._metrics)
            self._quarantine.subscribe(self._on_quarantine_change)
        self.recovery_summary = None
        if self._has_persisted_state():
            from .recovery import recover_engine_state
            self.recovery_summary = recover_engine_state(self)
        if self._tile_cache is not None and config.tile_cache_persist:
            self._load_tiles()

    def _has_persisted_state(self):
        """Does the directory hold any prior session's data?

        Checks the catalog *and* for TsFiles/WAL segments, so a store
        whose catalog was lost (e.g. torn back to its header) still
        triggers recovery — which then fails loudly on the orphaned
        chunks instead of silently opening an empty engine over them.
        """
        if any(True for _ in self._catalog.read_all()):
            return True
        from .recovery import list_tsfiles
        if list_tsfiles(self._data_dir):
            return True
        return self._wal is not None and bool(self._wal.segment_paths())

    # -- schema ---------------------------------------------------------------------

    @property
    def config(self):
        """The engine's :class:`StorageConfig`."""
        return self._config

    @property
    def stats(self):
        """Shared I/O counters for this engine and its readers."""
        return self._stats

    @property
    def metrics(self):
        """The engine's :class:`repro.obs.MetricsRegistry`."""
        return self._metrics

    @property
    def tracer(self):
        """The engine's :class:`repro.obs.Tracer` (span trees)."""
        return self._tracer

    @property
    def slow_log(self):
        """The engine's rolling :class:`repro.obs.SlowQueryLog`."""
        return self._slow_log

    @property
    def traces(self):
        """The engine's :class:`repro.obs.TraceStore` of request traces.

        In-memory only (traces are a live-debugging surface, not
        durable state); populated by the HTTP service layer, read by
        ``GET /trace`` and ``repro trace``.
        """
        return self._traces

    # -- observability snapshot / persistence ------------------------------------------

    def _obs_path(self):
        return os.path.join(self._data_dir, self.OBS_FILE)

    def _load_obs_snapshot(self):
        """Best-effort merge of a prior session's persisted metrics.

        A corrupt or truncated ``obs.json`` (e.g. a crash between the
        temp write and the rename on the seed format) resets the stats
        with a logged warning — observability damage must never block
        an engine open.
        """
        if not self._config.metrics_enabled:
            return
        path = self._obs_path()
        if not os.path.exists(path):
            return
        try:
            with faultfs.fopen(path, "rb") as f:
                data = json.loads(f.read().decode("utf-8"))
        except (OSError, ValueError) as exc:
            log.warning("%s: unreadable observability snapshot (%s) — "
                        "resetting stats", path, exc)
            self._metrics.counter("obs_snapshot_resets_total").inc()
            return
        if not isinstance(data, dict):
            log.warning("%s: malformed observability snapshot — "
                        "resetting stats", path)
            self._metrics.counter("obs_snapshot_resets_total").inc()
            return
        self._metrics.load(data.get("metrics"))
        iostats = data.get("iostats")
        if isinstance(iostats, dict):
            import dataclasses
            known = {f.name for f in dataclasses.fields(IoStats)}
            for key, value in iostats.items():
                if key in known and isinstance(value, int):
                    setattr(self._io_base, key, value)
        self._slow_log.load(data.get("slow_queries"))

    def observability_snapshot(self):
        """The full observability state as a JSON-able dict.

        ``metrics`` is the registry snapshot with engine-lifetime I/O
        counters folded in as ``io_<field>_total``; ``iostats`` is the
        cumulative counter dict (prior sessions + this one);
        ``slow_queries`` is the rolling slow-query ring.
        """
        metrics = self._metrics.snapshot()
        cumulative = (self._io_base + self._stats.snapshot()).as_dict()
        for field, value in sorted(cumulative.items()):
            name = "io_%s_total" % field
            metrics["counters"][name] = {"name": name, "labels": {},
                                         "value": int(value)}
        return {"metrics": metrics, "iostats": cumulative,
                "slow_queries": self._slow_log.entries()}

    def _persist_obs(self):
        """Write the observability snapshot next to the data files.

        Counters and histograms accumulate across sessions (the snapshot
        loaded at open is part of the live registry), so the file always
        holds store-lifetime totals.  The write is atomic — a uniquely
        named temp file is written, fsynced, then renamed over
        ``obs.json`` — so a concurrent or crashed writer can never leave
        a torn JSON behind that poisons the next startup.  Best-effort:
        failures never block close().
        """
        if not (self._config.metrics_enabled
                and self._config.persist_metrics):
            return
        data = {"metrics": self._metrics.snapshot(),
                "iostats": (self._io_base + self._stats.snapshot())
                .as_dict(),
                "slow_queries": self._slow_log.entries()}
        tmp = "%s.%d.%d.tmp" % (self._obs_path(), os.getpid(),
                                threading.get_ident())
        try:
            with faultfs.fopen(tmp, "wb") as f:
                f.write(json.dumps(data, sort_keys=True).encode("utf-8"))
                f.flush()
                faultfs.fsync(f)
            faultfs.replace(tmp, self._obs_path())
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass

    @property
    def data_dir(self):
        """Directory holding TsFiles and the mods log."""
        return self._data_dir

    def create_series(self, name):
        """Register a series; returns its id.  Idempotent, durable."""
        with self._lock:
            if name in self._series:
                return self._series[name].series_id
            series_id = self._next_series_id
            self._next_series_id += 1
            state = SeriesState(series_id, name, metrics=self._metrics)
            self._series[name] = state
            self._series_by_id[series_id] = state
            self._catalog.append(series_id, name)
            if self._replication is not None:
                self._replication.record_create(series_id, name)
            self._metrics.gauge("engine_series").set(len(self._series))
            return series_id

    def _register_recovered_series(self, series_id, name):
        """Recovery hook: re-register a series read from the catalog."""
        with self._lock:
            state = SeriesState(series_id, name, metrics=self._metrics)
            self._series[name] = state
            self._series_by_id[series_id] = state
            self._next_series_id = max(self._next_series_id, series_id + 1)
            return state

    def _restore_counters(self, max_version, max_file_seq):
        """Recovery hook: continue version/file numbering after restart."""
        with self._lock:
            self._versions = VersionAllocator(start=max_version + 1)
            self._file_seq = max_file_seq

    def attach_replication(self, replication_log):
        """Emit a replication frame for every subsequent mutation.

        ``replication_log`` is a :class:`repro.replication.ReplicationLog`
        (or anything with its ``record_*`` hooks).  Series that already
        exist are *not* back-filled — first contact with a replica
        always starts from a snapshot resync, which carries them.
        """
        with self._lock:
            self._replication = replication_log

    def series_id(self, name):
        """The series' id (raises :class:`SeriesNotFoundError`)."""
        return self._state(name).series_id

    def series_snapshot(self, name):
        """One consistent content snapshot, memtable included.

        Returns ``(chunks, deletes, mem_t, mem_v)`` taken under a
        single read lock, so replication snapshots and anti-entropy
        fingerprints see a point-in-time view without forcing a flush.
        """
        state = self._state(name)
        with state.lock.read():
            mem_t, mem_v = state.memtable.snapshot()
            return (list(state.chunks), DeleteList(state.deletes),
                    mem_t, mem_v)

    def series_names(self):
        """All registered series names."""
        with self._lock:
            return list(self._series)

    def _state(self, name):
        with self._lock:
            try:
                return self._series[name]
            except KeyError:
                raise SeriesNotFoundError("unknown series %r"
                                          % name) from None

    # -- writes ------------------------------------------------------------------------

    def write(self, name, t, v):
        """Insert one point (auto-flushing at the threshold).

        Args:
            name: a series registered with :meth:`create_series`.
            t: integer timestamp (any order; overlap resolves on read).
            v: float value.

        Raises:
            SeriesNotFoundError: ``name`` was never registered.
        """
        state = self._state(name)
        with state.lock.write():
            if self._wal is not None:
                self._wal.segment(state.series_id).append(state.series_id,
                                                          int(t), float(v))
            before_max = self._series_max_time(state)
            state.memtable.append(int(t), float(v))
            state.points_written += 1
            if self._replication is not None:
                self._replication.record_points(state.series_id,
                                                [int(t)], [float(v)])
            self._metrics.counter("engine_points_written_total").inc()
            self._note_tiles_write(state, int(t), int(t) + 1, before_max)
            self._maybe_flush(state)

    def write_batch(self, name, timestamps, values):
        """Insert a batch of points in any time order.

        Args:
            name: a series registered with :meth:`create_series`.
            timestamps: int64 array/sequence (need not be sorted).
            values: float64 array/sequence, same length.

        Raises:
            SeriesNotFoundError: ``name`` was never registered.

        Overlapping tiles of the M4 tile cache are invalidated here,
        under the series write lock, so cached viewports and fresh
        writes stay linearizable per series.
        """
        state = self._state(name)
        with self._tracer.span("write.batch", series=name):
            with state.lock.write():
                if self._wal is not None:
                    segment = self._wal.segment(state.series_id)
                    segment.append_batch(state.series_id, timestamps,
                                         values)
                    segment.sync()
                before = len(state.memtable)
                before_max = self._series_max_time(state)
                state.memtable.append_batch(timestamps, values)
                appended = len(state.memtable) - before
                state.points_written += appended
                if self._replication is not None:
                    self._replication.record_points(state.series_id,
                                                    timestamps, values)
                self._metrics.counter("engine_points_written_total") \
                    .inc(appended)
                self._metrics.counter("engine_write_batches_total").inc()
                if appended:
                    self._note_tiles_write(state, int(min(timestamps)),
                                           int(max(timestamps)) + 1,
                                           before_max)
                self._maybe_flush(state)

    def delete(self, name, t_start, t_end):
        """Delete the closed time range ``[t_start, t_end]`` (Def. 2.5).

        Points still buffered in the memtable are flushed first so the
        versioned delete unambiguously orders after them, mirroring
        IoTDB's flush-before-delete on the affected series.
        """
        state = self._state(name)
        with self._tracer.span("delete", series=name):
            with state.lock.write():
                if state.memtable:
                    self._flush_locked(state)
                with self._lock:
                    delete = Delete(int(t_start), int(t_end),
                                    self._versions.next())
                    state.deletes.add(delete)
                    self._mods.append(state.series_id, delete)
                if self._replication is not None:
                    self._replication.record_delete(state.series_id,
                                                    int(t_start),
                                                    int(t_end))
                self._invalidate_tiles(name, int(t_start), int(t_end) + 1)
            self._metrics.counter("engine_deletes_total").inc()
        return delete

    def _maybe_flush(self, state):
        """Threshold flush; caller holds the series write lock."""
        threshold = self._config.avg_series_point_number_threshold
        flushed = False
        while len(state.memtable) >= threshold:
            t, v = state.memtable.drain_prefix(threshold)
            self._seal_chunk(state, t, v)
            flushed = True
        if flushed:
            self._checkpoint_wal(state)

    def flush(self, name):
        """Flush a series' memtable into a final (possibly smaller) chunk."""
        state = self._state(name)
        with state.lock.write():
            self._flush_locked(state)

    def _flush_locked(self, state):
        """Flush body; caller holds the series write lock."""
        if not state.memtable:
            return
        with self._tracer.span("flush", series=state.name,
                               points=len(state.memtable)):
            t, v = state.memtable.drain()
            self._seal_chunk(state, t, v)
            self._checkpoint_wal(state)

    def _checkpoint_wal(self, state):
        """Make the series' WAL segment equal its memtable contents.

        After a full flush the segment rotates empty; after a partial
        (threshold) flush the still-buffered remainder is re-logged.
        Caller holds the series write lock.
        """
        if self._replication is not None:
            self._replication.record_flush(state.series_id)
        if self._wal is None:
            return
        segment = self._wal.segment(state.series_id)
        if not state.memtable:
            segment.rotate()
        else:
            segment.rewrite(state.series_id, *state.memtable.snapshot())

    def flush_all(self):
        """Flush every series and seal the active TsFile so that all data
        is query-visible (each flush checkpoints its WAL segment)."""
        for name in self.series_names():
            self.flush(name)
        self._seal_active_file()

    # -- TsFile management ---------------------------------------------------------------

    def _seal_chunk(self, state, timestamps, values):
        """Seal one chunk; caller holds the series write lock."""
        if timestamps.size == 0:
            return
        with self._tracer.span("flush.seal_chunk", series=state.name,
                               points=int(timestamps.size)):
            with self._lock:
                version = self._versions.next()
                block, metadata = write_chunk(state.series_id, version,
                                              timestamps, values,
                                              self._config)
                if self._writer is None:
                    self._writer = TsFileWriter(self._next_file_path())
                    self._writer_chunks = 0
                located = self._writer.append_chunk(block, metadata)
                state.chunks.append(located)
                self._writer_chunks += 1
                seal_file = (self._writer_chunks
                             >= self._config.chunks_per_tsfile)
            self._metrics.counter("engine_chunks_sealed_total").inc()
            self._metrics.counter("engine_points_flushed_total") \
                .inc(int(timestamps.size))
            if seal_file:
                self._seal_active_file()

    def _next_file_path(self):
        self._file_seq += 1
        return os.path.join(self._data_dir, "%06d.tsfile" % self._file_seq)

    def _seal_active_file(self):
        with self._lock:
            if self._writer is not None:
                self._writer.close()
                self._writer = None
                self._writer_chunks = 0
                self._metrics.counter("engine_tsfiles_sealed_total").inc()
                self._metrics.gauge("engine_tsfile_seq").set(self._file_seq)

    def _on_io_retry(self, attempt, exc):
        self._metrics.counter("storage_io_retries_total").inc()

    def _open_reader(self, path):
        """A fresh (unpooled) :class:`TsFileReader` with engine config.

        Used by recovery and fsck, which manage the reader's lifetime
        themselves; queries go through the :meth:`tsfile_reader` pool.
        """
        return TsFileReader(
            path, self._stats,
            verify_checksums=self._config.verify_checksums,
            on_retry=self._on_io_retry,
            retry_attempts=self._config.io_retry_attempts,
            retry_base_delay=self._config.io_retry_base_delay,
            retry_max_delay=self._config.io_retry_max_delay)

    def tsfile_reader(self, path):
        """Pooled :class:`TsFileReader` for a sealed file.

        Raises :class:`StorageError` once the engine is closed, so a
        query racing :meth:`close` fails with a clean, typed error
        instead of reviving the drained reader pool.
        """
        with self._lock:
            if self._closed:
                raise StorageError("engine is closed")
            if path not in self._readers:
                self._readers[path] = self._open_reader(path)
            return self._readers[path]

    # -- parallel chunk pipeline ---------------------------------------------------------

    @property
    def parallelism(self):
        """Worker count of the chunk pipeline (1 = serial)."""
        return self._config.parallelism

    def parallel_map(self, fn, items):
        """``[fn(x) for x in items]`` through the shared chunk pipeline.

        Results come back in submission order, so callers that merge
        them see the serial sequence and produce byte-identical output.
        Serial when ``parallelism`` is 1 or from within a pool worker.
        """
        if self._pipeline is None:
            return serial_map(fn, items)
        return self._pipeline.map_ordered(fn, items)

    # -- query surface -----------------------------------------------------------------

    def chunks_for(self, name):
        """Sealed chunk metadata for a series (version order).

        Raises if the series still has buffered points — call
        :meth:`flush_all` before querying.  The returned list is a
        snapshot: chunks sealed later do not appear in it.
        """
        state = self._state(name)
        with state.lock.read():
            if state.memtable:
                raise StorageError(
                    "series %r has unflushed points; call flush_all() first"
                    % name)
            return list(state.chunks)

    def deletes_for(self, name):
        """A consistent snapshot of the series' :class:`DeleteList`."""
        state = self._state(name)
        with state.lock.read():
            return DeleteList(state.deletes)

    def series_lock(self, name):
        """The series' :class:`RWLock` (operators may hold ``read()``
        across a multi-step query for a full-query-stable view)."""
        return self._state(name).lock

    def metadata_reader(self, name):
        """A :class:`MetadataReader` over the series' sealed chunks."""
        return MetadataReader(self.chunks_for(name), self._stats)

    @property
    def chunk_cache(self):
        """The shared decoded-page cache (None when disabled)."""
        return self._chunk_cache

    @property
    def quarantine(self):
        """The engine's :class:`QuarantineRegistry` of damaged chunks."""
        return self._quarantine

    # -- M4 tile cache -----------------------------------------------------------------

    @property
    def tile_cache(self):
        """The M4 viewport tile cache (None when disabled).

        Enabled via ``StorageConfig.tile_cache_bytes``; consumed by
        :class:`repro.core.tiles.TiledM4Operator` through the Executor,
        ``render_chart`` and the HTTP service.
        """
        return self._tile_cache

    def _series_max_time(self, state):
        """Upper bound on every timestamp ``state`` holds; caller must
        hold the series write lock.

        Lazily computed from sealed chunk statistics plus the memtable
        and cached on ``state.max_time`` (recovery leaves it None).
        Returns ``-2**63`` for an empty series so any timestamp
        compares strictly after.  Deletes and compaction never raise
        the true maximum, so the cached bound stays valid (it may
        over-estimate after a tail delete, which only costs a
        conservative full invalidation on the next write).
        """
        if state.max_time is not None:
            return state.max_time
        bound = -(1 << 63)
        for chunk in state.chunks:
            bound = max(bound, int(chunk.end_time))
        if len(state.memtable):
            t, _ = state.memtable.snapshot()
            if len(t):
                bound = max(bound, int(t.max()))
        state.max_time = bound
        return bound

    def _note_tiles_write(self, state, lo, hi, before_max):
        """Tile maintenance for a write of ``[lo, hi)``; caller holds
        the series write lock.

        A pure tail append (every new timestamp strictly after the
        series' previous maximum) marks overlapping tiles dirty for
        incremental cell repair instead of dropping them; interior or
        out-of-order writes fall back to overlap invalidation.
        """
        if self._tile_cache is not None:
            if self._config.tile_incremental and lo > before_max:
                self._tile_cache.mark_dirty(state.name, lo, hi)
            else:
                self._tile_cache.invalidate(state.name, lo, hi)
        state.max_time = max(before_max, hi - 1)

    def _invalidate_tiles(self, name, lo, hi):
        """Drop cached tiles overlapping ``[lo, hi)`` of one series.

        Called from the write/delete paths while the series write lock
        is held, which is what makes tile invalidation linearizable
        with tile-stitching queries (they hold the read side).
        """
        if self._tile_cache is not None:
            self._tile_cache.invalidate(name, lo, hi)

    def _invalidate_series_tiles(self, name):
        """Drop every cached tile of a series (compaction hook:
        rewriting chunks may legally move BP/TP tie-break points)."""
        if self._tile_cache is not None:
            self._tile_cache.invalidate_series(name)

    def _on_quarantine_change(self, entry):
        """Quarantine subscription: newly-damaged chunks must not keep
        serving their pre-damage aggregates out of cached tiles."""
        if self._tile_cache is None:
            return
        if entry is None:
            self._tile_cache.invalidate_all()
            return
        state = self._series_by_id.get(entry.get("series_id"))
        start, end = entry.get("start_time"), entry.get("end_time")
        if state is None or start is None or end is None:
            # Cannot attribute the damage: drop everything (rare, and
            # always safe — tiles are pure derived data).
            self._tile_cache.invalidate_all()
        else:
            self._tile_cache.invalidate(state.name, int(start),
                                        int(end) + 1)

    def _tile_fingerprint(self):
        """Per-series data-version + quarantine fingerprint.

        Persisted with the tile snapshot and compared on load: a series
        whose chunk/delete versions moved (or any quarantine change)
        marks its tiles stale.  Conservative by construction — false
        mismatches only cost recomputation.
        """
        series = {}
        for name in self.series_names():
            state = self._state(name)
            with state.lock.read():
                series[name] = [
                    len(state.chunks),
                    max((int(c.version) for c in state.chunks), default=0),
                    len(state.deletes),
                    max((int(d.version) for d in state.deletes), default=0),
                ]
        quarantine = [[e["file"], e["data_offset"]]
                      for e in self._quarantine.entries()]
        return {"series": series, "quarantine": quarantine}

    def _tiles_path(self):
        from ..core.tiles_io import FILENAME
        return os.path.join(self._data_dir, FILENAME)

    def _load_tiles(self):
        """Revive the persisted tile snapshot (stale entries dropped)."""
        from ..core.tiles_io import load_tiles
        entries, warnings = load_tiles(self._tiles_path(),
                                       self._tile_fingerprint(),
                                       self._config.tile_cache_spans)
        for warning in warnings:
            log.warning("%s", warning)
            self._metrics.counter("tile_cache_load_warnings_total").inc()
        for series, level, tile, entry in entries:
            self._tile_cache.insert(series, level, tile, entry,
                                    self._tile_cache.epoch(series))

    def _persist_tiles(self):
        """Snapshot the tile cache next to the data files (best-effort,
        atomic; see ``repro.core.tiles_io``)."""
        if self._tile_cache is None \
                or not self._config.tile_cache_persist:
            return
        from ..core.tiles_io import save_tiles
        # Dirty tiles need a repair pass before they can be served;
        # persisting them would revive un-repairable entries (the
        # snapshot format has no dirty column), so drop them here.
        snapshot = [rec for rec in self._tile_cache.snapshot()
                    if not rec[3].dirty]
        save_tiles(self._tiles_path(), snapshot,
                   self._tile_fingerprint(),
                   self._config.tile_cache_spans)

    def data_reader(self):
        """A fresh :class:`DataReader`.

        Each reader has its own per-query decoded-page map; when the
        engine's shared :class:`ChunkCache` is enabled it backs all
        readers, so repeated queries skip decoding.
        """
        return DataReader(self.tsfile_reader, self._stats,
                          shared_cache=self._chunk_cache)

    def total_points(self, name):
        """Latest-point count of the merged series (loads everything)."""
        from .merge import merge_arrays  # local import to avoid cycle noise
        reader = self.data_reader()
        chunks = [(*reader.load_chunk(meta), meta.version)
                  for meta in self.chunks_for(name)]
        t, _v = merge_arrays(chunks, self.deletes_for(name))
        return int(t.size)

    @property
    def closed(self):
        """True once :meth:`close` has begun (no new readers issued)."""
        return self._closed

    def close(self):
        """Seal the active file and release every reader and the WAL.

        Buffered points stay in the WAL (not flushed), so a reopened
        engine recovers them — closing is not an implicit flush.
        Idempotent and safe to call concurrently — from many threads at
        once, and while queries are still in flight.  The first caller
        wins and performs the teardown; every other call returns
        immediately (it does not wait for the teardown to finish).
        In-flight queries either complete normally (chunk data already
        read: metadata, memtables and the decoded-page cache stay
        valid) or fail with a clean :class:`StorageError` /
        ``ValueError`` when they next touch a released file handle —
        never a crash or a deadlock, because teardown never waits on a
        series lock.  (With ``tile_cache_persist`` on, the post-teardown
        tile snapshot briefly takes series *read* locks for its
        fingerprint — still deadlock-free: no other lock is held.)
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._seal_active_file()
            for reader in self._readers.values():
                reader.close()
            self._readers.clear()
            if self._wal is not None:
                self._wal.close()
        if self._pipeline is not None:
            self._pipeline.shutdown()
        self._persist_tiles()
        self._persist_obs()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()
