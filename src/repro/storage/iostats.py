"""I/O and CPU cost counters for the storage layer.

Wall-clock latency on this Python substrate is not comparable to the
paper's Java-on-HDD testbed, so besides timing we count the operations
whose asymmetry drives every experiment: metadata reads (cheap), page
decodes (the expensive part of chunk loading) and merged points (the CPU
cost of MergeReader).  Benchmarks report both clock time and counters.

One :class:`IoStats` is shared by an engine, its pooled readers and
every concurrent query, so increments go through :meth:`add`, which is
atomic under an internal lock.  Direct ``stats.field += n`` still works
for single-threaded code (tests, ad-hoc accounting) but can lose
updates under concurrency — engine code paths never use it.
"""

from __future__ import annotations

import dataclasses
import threading


@dataclasses.dataclass
class IoStats:
    """Mutable counters shared by readers and operators."""

    metadata_reads: int = 0        # chunk metadata entries read
    chunk_loads: int = 0           # chunks whose data section was opened
    pages_decoded: int = 0         # pages decoded (time or value column)
    points_decoded: int = 0        # points materialized from pages
    points_merged: int = 0         # points pushed through MergeReader
    bytes_read: int = 0            # raw bytes fetched from disk
    index_lookups: int = 0         # chunk-index probe operations
    candidate_iterations: int = 0  # M4-LSM generate/verify rounds
    cache_hits: int = 0            # shared ChunkCache hits
    cache_misses: int = 0          # shared ChunkCache misses

    def __post_init__(self):
        # Not a dataclass field, so reset/diff/as_dict never touch it.
        self._lock = threading.Lock()

    def add(self, **deltas):
        """Atomically add ``field=n`` deltas (thread-safe increment)."""
        with self._lock:
            for name, n in deltas.items():
                setattr(self, name, getattr(self, name) + n)

    def reset(self):
        """Zero every counter in place."""
        with self._lock:
            for field in dataclasses.fields(self):
                setattr(self, field.name, 0)

    def snapshot(self):
        """An independent copy of the current counters."""
        with self._lock:
            return dataclasses.replace(self)

    def diff(self, earlier):
        """Counters accumulated since ``earlier`` (a snapshot)."""
        out = IoStats()
        with self._lock:
            for field in dataclasses.fields(self):
                setattr(out, field.name,
                        getattr(self, field.name)
                        - getattr(earlier, field.name))
        return out

    def as_dict(self):
        """Plain-dict view for reports."""
        with self._lock:
            return {field.name: getattr(self, field.name)
                    for field in dataclasses.fields(self)}

    def __add__(self, other):
        out = IoStats()
        for field in dataclasses.fields(self):
            setattr(out, field.name,
                    getattr(self, field.name) + getattr(other, field.name))
        return out
