"""MemTable: the in-memory write buffer of the LSM engine.

Points accumulate here (possibly out of order, possibly overwriting each
other) until the flush threshold is reached; a flush drains a time-sorted,
duplicate-free batch that becomes one chunk.  Within a memtable the *last
inserted* value wins for a repeated timestamp, matching LSM semantics
where later writes overwrite earlier ones.
"""

from __future__ import annotations

import numpy as np

from ..errors import StorageError


class MemTable:
    """Write buffer for one series."""

    def __init__(self):
        self._time_parts = []
        self._value_parts = []
        self._count = 0
        # Lifetime accounting (read by flush spans and ``repro stats``).
        self.appended_total = 0
        self.drained_total = 0
        self.drain_count = 0

    def __len__(self):
        return self._count

    def __bool__(self):
        return self._count > 0

    def append(self, t, v):
        """Insert a single point."""
        self._time_parts.append(np.array([t], dtype=np.int64))
        self._value_parts.append(np.array([v], dtype=np.float64))
        self._count += 1
        self.appended_total += 1

    def append_batch(self, timestamps, values):
        """Insert a batch of points (any order, duplicates allowed)."""
        t = np.ascontiguousarray(timestamps, dtype=np.int64)
        v = np.ascontiguousarray(values, dtype=np.float64)
        if t.size != v.size:
            raise StorageError("time/value length mismatch in batch")
        if t.size == 0:
            return
        self._time_parts.append(t)
        self._value_parts.append(v)
        self._count += t.size
        self.appended_total += int(t.size)

    def drain(self):
        """Remove and return all points as sorted, de-duplicated arrays.

        Returns ``(timestamps, values)`` with strictly increasing
        timestamps; for duplicate timestamps the last-inserted value wins.
        """
        if not self._count:
            return (np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float64))
        t = np.concatenate(self._time_parts)
        v = np.concatenate(self._value_parts)
        self._time_parts.clear()
        self._value_parts.clear()
        self._count = 0
        insert_order = np.arange(t.size, dtype=np.int64)
        order = np.lexsort((insert_order, t))  # by time, then insert order
        t = t[order]
        v = v[order]
        keep = np.concatenate((t[1:] != t[:-1], [True]))  # last per timestamp
        self.drained_total += int(np.count_nonzero(keep))
        self.drain_count += 1
        return t[keep], v[keep]

    def snapshot(self):
        """Buffered points as raw ``(timestamps, values)`` arrays,
        without draining (arrival order, duplicates included).

        Used by the WAL to re-log the remainder after a partial flush.
        """
        if not self._count:
            return (np.empty(0, dtype=np.int64),
                    np.empty(0, dtype=np.float64))
        return (np.concatenate(self._time_parts),
                np.concatenate(self._value_parts))

    def drain_prefix(self, n_points):
        """Drain only the ``n_points`` earliest timestamps (for size-capped
        chunk cuts); the rest stay buffered.
        """
        t, v = self.drain()
        if t.size <= n_points:
            return t, v
        self.append_batch(t[n_points:], v[n_points:])
        # The re-buffered remainder was never new data nor truly drained.
        remainder = int(t.size) - n_points
        self.appended_total -= remainder
        self.drained_total -= remainder
        return t[:n_points], v[:n_points]

    def stats(self):
        """Lifetime accounting: buffered, appended, drained, drains."""
        return {"buffered_points": self._count,
                "appended_total": self.appended_total,
                "drained_total": self.drained_total,
                "drain_count": self.drain_count}
