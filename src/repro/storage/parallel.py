"""The parallel chunk pipeline: fan out chunk load/decode across threads.

Chunk loading is the one genuinely parallel phase of an M4 query: page
payload reads release the lock quickly, and the heavy parts — numpy
decode and zlib decompress — release the GIL, so a thread pool gives
real wall-clock speedup on multi-chunk queries even in pure Python.

Results are always returned **in submission order**, so the downstream
merge sees exactly the sequence a serial loop would have produced and
query output stays byte-identical to ``parallelism=1``.

The pool is shared engine-wide (one per :class:`StorageEngine`, sized by
``StorageConfig.parallelism``) and tasks never fan out recursively: a
call issued from inside a worker thread degrades to a serial loop, so
nested operators cannot deadlock on pool exhaustion.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor

from ..obs.tracer import activate, ambient_span, current_span
from .deadline import check_deadline, current_deadline, deadline_scope

_WORKER_PREFIX = "repro-chunk"

_local = threading.local()


def in_worker_thread():
    """True when the calling thread is one of the pipeline's workers."""
    return getattr(_local, "is_worker", False)


def _mark_worker():
    _local.is_worker = True


class ChunkPipeline:
    """A shared, bounded thread pool with ordered fan-out.

    >>> pipeline = ChunkPipeline(4)
    >>> pipeline.map_ordered(lambda x: x * x, [1, 2, 3])
    [1, 4, 9]
    >>> pipeline.shutdown()
    """

    def __init__(self, workers):
        if workers < 1:
            raise ValueError("parallelism must be >= 1")
        self._workers = int(workers)
        self._executor = ThreadPoolExecutor(
            max_workers=self._workers,
            thread_name_prefix=_WORKER_PREFIX,
            initializer=_mark_worker)
        self._closed = False

    @property
    def workers(self):
        """Number of pool threads."""
        return self._workers

    def map_ordered(self, fn, items):
        """``[fn(x) for x in items]``, computed concurrently.

        Exceptions propagate exactly as in the serial loop: the first
        failing item's exception is raised (later results discarded).
        Falls back to a plain loop when called from a worker thread
        (no nested fan-out) or after :meth:`shutdown`.

        The submitting thread's :class:`~repro.storage.deadline.Deadline`
        (if any) propagates into the workers: each item checks it before
        running, so a timed-out query's queued chunk loads fail fast and
        the first :class:`~repro.errors.DeadlineExceededError` surfaces
        on the submitting thread exactly like a serial abort.  The
        submitting thread's open span propagates the same way: each
        worker re-roots under it (see :func:`repro.obs.tracer.activate`),
        so request traces show one ``pipeline.item`` span per chunk with
        the worker thread it ran on.
        """
        items = list(items)
        deadline = current_deadline()
        if self._closed or len(items) <= 1 or in_worker_thread():
            return [_checked(fn, item, deadline, i)
                    for i, item in enumerate(items)]
        span = current_span()
        if deadline is not None or span is not None:
            inner = fn

            def fn(indexed):
                i, item = indexed
                with deadline_scope(deadline):
                    if deadline is not None:
                        deadline.check()
                    with activate(span):
                        with ambient_span("pipeline.item", index=i):
                            return inner(item)

            return list(self._executor.map(fn, enumerate(items)))
        return list(self._executor.map(fn, items))

    def shutdown(self):
        """Stop the workers; subsequent maps run serially."""
        if not self._closed:
            self._closed = True
            self._executor.shutdown(wait=True)

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.shutdown()


def _checked(fn, item, deadline, index):
    if deadline is not None:
        deadline.check()
    with ambient_span("pipeline.item", index=index):
        return fn(item)


def serial_map(fn, items):
    """The ``parallelism=1`` stand-in: a plain ordered loop (still a
    deadline checkpoint and — inside a detailed trace — a
    ``pipeline.item`` span per item)."""
    deadline = current_deadline()
    return [_checked(fn, item, deadline, i)
            for i, item in enumerate(items)]
