"""Storage engine configuration, mirroring the paper's Table 4 settings.

The defaults correspond to the experimental setup of the paper: large
TsFiles, 1000 points per chunk, one page per chunk unless configured
smaller, and compaction disabled.
"""

from __future__ import annotations

import dataclasses

from .encoding import Compression, Encoding


@dataclasses.dataclass
class StorageConfig:
    """Tunable knobs of :class:`repro.storage.engine.StorageEngine`.

    ``avg_series_point_number_threshold`` plays the role of IoTDB's
    parameter of the same name: the memtable flushes into a new chunk once
    a series accumulates this many points.
    """

    avg_series_point_number_threshold: int = 1000
    points_per_page: int = 1000
    chunks_per_tsfile: int = 64
    time_encoding: Encoding = Encoding.TS_2DIFF
    value_encoding: Encoding = Encoding.PLAIN
    compression: Compression = Compression.NONE
    enable_compaction: bool = False   # Table 4: NO_COMPACTION
    build_chunk_index: bool = True    # step regression index at flush time
    enable_wal: bool = True           # write-ahead log for buffered points
    chunk_cache_points: int = 0       # shared decoded-page LRU (0 = off)
    metrics_enabled: bool = True      # repro.obs registry + span tracer
    persist_metrics: bool = True      # write obs.json on engine close
    parallelism: int = 1              # chunk pipeline workers (1 = serial)
    slow_query_seconds: float = 1.0   # slow-query log threshold
    slow_query_log_size: int = 128    # slow-query ring capacity
    verify_checksums: bool = True     # CRC-check page payloads on read
    degraded_reads: bool = True       # skip+flag quarantined chunks (False: raise)
    io_retry_attempts: int = 4        # transient-EIO retries per read
    io_retry_base_delay: float = 0.005  # first backoff sleep (doubles, capped)
    io_retry_max_delay: float = 0.1
    tile_cache_bytes: int = 0         # M4 tile LRU budget (0 = off)
    tile_cache_spans: int = 64        # spans (grid cells) per tile
    tile_cache_persist: bool = False  # snapshot tiles.cache on close
    tile_incremental: bool = True     # tail appends dirty cells, not tiles
    trace_capacity: int = 256         # retained request traces (ring)
    trace_sample_every: int = 16      # keep 1-in-N unsampled fast traces

    def __post_init__(self):
        if self.avg_series_point_number_threshold <= 0:
            raise ValueError("flush threshold must be positive")
        if self.points_per_page <= 0:
            raise ValueError("points_per_page must be positive")
        if self.points_per_page > self.avg_series_point_number_threshold:
            # A chunk never holds fewer points than one page.
            self.points_per_page = self.avg_series_point_number_threshold
        if self.chunks_per_tsfile <= 0:
            raise ValueError("chunks_per_tsfile must be positive")
        if self.chunk_cache_points < 0:
            raise ValueError("chunk_cache_points must be >= 0")
        if self.parallelism < 1:
            raise ValueError("parallelism must be >= 1")
        if self.slow_query_log_size <= 0:
            raise ValueError("slow_query_log_size must be positive")
        if self.io_retry_attempts < 1:
            raise ValueError("io_retry_attempts must be >= 1")
        if self.tile_cache_bytes < 0:
            raise ValueError("tile_cache_bytes must be >= 0")
        if self.tile_cache_spans < 1:
            raise ValueError("tile_cache_spans must be >= 1")
        if self.trace_capacity <= 0:
            raise ValueError("trace_capacity must be positive")
        if self.trace_sample_every < 0:
            raise ValueError("trace_sample_every must be >= 0")


DEFAULT_CONFIG = StorageConfig()
