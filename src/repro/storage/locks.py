"""Lock primitives for the concurrent storage engine.

The engine's lock hierarchy (documented in DESIGN.md § Concurrency
model) has exactly two levels:

1. a **per-series reader/writer lock** (:class:`RWLock`) guarding one
   :class:`~repro.storage.engine.SeriesState` — memtable, sealed chunk
   list and delete list;
2. an **engine-level lock** guarding cross-series state — the catalog,
   the version allocator, the active TsFile writer and the reader pool.

The ordering rule is *series before engine*: a thread holding a series
lock may acquire the engine lock (flushing does), but never the
reverse.  Both levels are reentrant per thread, so ``delete`` can flush
under its own write lock without deadlocking itself.

:class:`RWLock` is writer-preferring: once a writer is waiting, new
readers queue behind it, so a stream of M4 queries cannot starve a
flush.  Writer-preference is exactly where tail latency hides, so the
lock accepts an optional :class:`LockWaitObs` that times every
acquisition into ``lock_wait_seconds{series,side}`` histograms and —
when a request trace is active on the acquiring thread — attaches a
``lock.wait`` span to it.
"""

from __future__ import annotations

import contextlib
import threading
import time

from ..obs.tracer import attach_timed


class LockWaitObs:
    """Sink for :class:`RWLock` acquisition wait times.

    Histograms are looked up through the registry on every record (not
    cached) so flipping ``registry.enabled`` at runtime — the obs
    overhead benchmark does — takes effect immediately.
    """

    __slots__ = ("_metrics", "_series")

    def __init__(self, metrics, series):
        self._metrics = metrics
        self._series = series

    def record(self, side, started, ended):
        waited = ended - started
        self._metrics.histogram("lock_wait_seconds", series=self._series,
                                side=side).observe(waited)
        attach_timed("lock.wait", started, ended,
                     series=self._series, side=side)


class RWLock:
    """A reentrant, writer-preferring readers/writer lock.

    Any number of threads may hold the read side at once; the write side
    is exclusive.  A thread holding the write lock may re-acquire either
    side (lock downgrades for the duration of the inner block are *not*
    performed — the thread simply stays exclusive).  A thread holding
    only the read lock must not request the write lock (upgrade
    deadlock); the engine's call graph never does.

    Args:
        obs: optional :class:`LockWaitObs`; when set, every top-level
            acquisition's wait time is recorded (outside the internal
            condition lock, so observability never extends the critical
            section).  Reentrant re-acquisitions are not timed — they
            cannot wait.
    """

    def __init__(self, obs=None):
        self._cond = threading.Condition(threading.Lock())
        self._readers = {}          # thread id -> recursive read depth
        self._writer = None         # thread id of the exclusive holder
        self._writer_depth = 0
        self._writers_waiting = 0
        self._obs = obs

    # -- read side ------------------------------------------------------------------

    def acquire_read(self):
        if self._obs is not None:
            started = time.perf_counter()
            timed = self._acquire_read()
            if timed:
                self._obs.record("read", started, time.perf_counter())
            return
        self._acquire_read()

    def _acquire_read(self):
        me = threading.get_ident()
        with self._cond:
            if self._writer == me or me in self._readers:
                # Reentrant: already a reader, or exclusive holder.
                if self._writer == me:
                    self._writer_depth += 1
                else:
                    self._readers[me] += 1
                return False
            while self._writer is not None or self._writers_waiting:
                self._cond.wait()
            self._readers[me] = 1
            return True

    def release_read(self):
        me = threading.get_ident()
        with self._cond:
            if self._writer == me:
                self._writer_depth -= 1
                if self._writer_depth == 0:
                    self._writer = None
                    self._cond.notify_all()
                return
            depth = self._readers.get(me, 0)
            if depth <= 0:
                raise RuntimeError("release_read without acquire_read")
            if depth == 1:
                del self._readers[me]
                if not self._readers:
                    self._cond.notify_all()
            else:
                self._readers[me] = depth - 1

    # -- write side -----------------------------------------------------------------

    def acquire_write(self):
        if self._obs is not None:
            started = time.perf_counter()
            timed = self._acquire_write()
            if timed:
                self._obs.record("write", started, time.perf_counter())
            return
        self._acquire_write()

    def _acquire_write(self):
        me = threading.get_ident()
        with self._cond:
            if self._writer == me:
                self._writer_depth += 1
                return False
            if me in self._readers:
                raise RuntimeError(
                    "read-to-write lock upgrade would deadlock")
            self._writers_waiting += 1
            try:
                while self._writer is not None or self._readers:
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer = me
            self._writer_depth = 1
            return True

    def release_write(self):
        me = threading.get_ident()
        with self._cond:
            if self._writer != me:
                raise RuntimeError("release_write by non-holder")
            self._writer_depth -= 1
            if self._writer_depth == 0:
                self._writer = None
                self._cond.notify_all()

    # -- context managers -----------------------------------------------------------

    @contextlib.contextmanager
    def read(self):
        """Context manager holding the shared (read) side."""
        self.acquire_read()
        try:
            yield self
        finally:
            self.release_read()

    @contextlib.contextmanager
    def write(self):
        """Context manager holding the exclusive (write) side."""
        self.acquire_write()
        try:
            yield self
        finally:
            self.release_write()
