"""Deletes (Definition 2.5) and helpers to apply them.

A delete is a closed time range ``[t_ds, t_de]`` with a version number.
It removes every point of any chunk with a *smaller* version whose
timestamp falls in the range.  Virtual deletes (Section 3.1) are ordinary
:class:`Delete` objects with infinite version.
"""

from __future__ import annotations

import dataclasses
import math

import numpy as np

from ..errors import StorageError
from .versions import VERSION_INFINITY

#: Open endpoints for virtual deletes covering ``(-inf, x)`` / ``[x, +inf)``.
TIME_MIN = -(2 ** 62)
TIME_MAX = 2 ** 62


@dataclasses.dataclass(frozen=True)
class Delete:
    """A versioned delete of the closed time range ``[t_start, t_end]``."""

    t_start: int
    t_end: int
    version: float  # int for real deletes; math.inf for virtual deletes

    def __post_init__(self):
        if self.t_start > self.t_end:
            raise StorageError(
                "delete range [%s, %s] is empty" % (self.t_start, self.t_end))

    def covers(self, t):
        """The paper's ``t |= D``: is ``t`` inside the delete range?"""
        return self.t_start <= t <= self.t_end

    def is_virtual(self):
        """True for span-boundary virtual deletes (version infinity)."""
        return math.isinf(self.version)

    @classmethod
    def virtual_before(cls, t):
        """Virtual delete ``(-inf, t)`` — i.e. ``[TIME_MIN, t - 1]``."""
        return cls(TIME_MIN, int(t) - 1, VERSION_INFINITY)

    @classmethod
    def virtual_from(cls, t):
        """Virtual delete ``[t, +inf)`` — i.e. ``[t, TIME_MAX]``."""
        return cls(int(t), TIME_MAX, VERSION_INFINITY)


class DeleteList:
    """An ordered collection of deletes with vectorized application.

    Deletes are kept in append order; queries filter by version so the
    same list serves chunks of any version.
    """

    def __init__(self, deletes=()):
        self._deletes = list(deletes)

    def __len__(self):
        return len(self._deletes)

    def __iter__(self):
        return iter(self._deletes)

    def __repr__(self):
        return "DeleteList(%d deletes)" % len(self._deletes)

    def add(self, delete):
        """Append a delete (versions must arrive in increasing order)."""
        if self._deletes and delete.version <= self._deletes[-1].version \
                and not delete.is_virtual():
            raise StorageError("delete versions must increase")
        self._deletes.append(delete)

    def extended(self, extra):
        """A new list with ``extra`` deletes appended (used to mix in
        virtual deletes without mutating the store's list)."""
        return DeleteList(self._deletes + list(extra))

    def after_version(self, version):
        """Deletes with a version strictly greater than ``version``."""
        return [d for d in self._deletes if d.version > version]

    def covers(self, t, min_version=-1):
        """True if any delete newer than ``min_version`` covers time ``t``.

        This is the conjunction test of Propositions 3.1 / 3.3.
        """
        return any(d.covers(t) for d in self._deletes if d.version > min_version)

    def overlapping(self, t_start, t_end, min_version=-1):
        """Deletes newer than ``min_version`` intersecting ``[t_start, t_end]``."""
        return [d for d in self._deletes
                if d.version > min_version
                and d.t_start <= t_end and d.t_end >= t_start]

    def keep_mask(self, timestamps, chunk_version):
        """Boolean mask of points of a chunk that survive these deletes.

        A point survives when no delete with a larger version than the
        chunk covers its timestamp.  ``timestamps`` must be sorted (chunk
        columns always are), so each delete costs O(log n) via binary
        search — the CPU-efficient delete application the paper credits
        for M4-UDF's flat latency under growing delete counts (Fig. 13).
        """
        t = np.asarray(timestamps)
        mask = np.ones(t.size, dtype=bool)
        if t.size == 0:
            return mask
        t_lo = int(t[0])
        t_hi = int(t[-1])
        for d in self._deletes:
            if d.version <= chunk_version:
                continue
            if d.t_start > t_hi or d.t_end < t_lo:
                continue
            lo = int(np.searchsorted(t, d.t_start, side="left"))
            hi = int(np.searchsorted(t, d.t_end, side="right"))
            mask[lo:hi] = False
        return mask

    def apply(self, timestamps, values, chunk_version):
        """Filtered ``(timestamps, values)`` after applying the deletes."""
        mask = self.keep_mask(timestamps, chunk_version)
        if mask.all():
            return timestamps, values
        return timestamps[mask], values[mask]

    def fully_deletes(self, start_time, end_time, chunk_version):
        """True if the chunk interval ``[start_time, end_time]`` is entirely
        covered by deletes newer than the chunk.

        Used by readers to skip loading completely deleted chunks — the
        behaviour behind the paper's Figure 14 (M4-UDF speeds up as the
        delete range grows).  Covers are checked by interval stitching.
        """
        relevant = sorted(
            (d for d in self._deletes
             if d.version > chunk_version
             and d.t_start <= end_time and d.t_end >= start_time),
            key=lambda d: d.t_start)
        reach = start_time
        for d in relevant:
            if d.t_start > reach:
                return False
            reach = max(reach, d.t_end + 1)
            if reach > end_time:
                return True
        return reach > end_time
