"""Readers over LSM storage: MetadataReader, DataReader, MergeReader.

These mirror the IoTDB components of the paper's Figure 15:

* :class:`MetadataReader` — lists chunk metadata overlapping a time range
  without touching chunk data.
* :class:`DataReader` — loads chunk data, page by page or whole, applies
  deletes, and builds chunk indexes.  Each query uses a fresh DataReader,
  so its decoded-page cache models per-query buffers, not a shared cache.
* :class:`MergeReader` — streams the merged series point by point with a
  heap, resolving overwrites by version and applying deletes (the faithful
  transcription of IoTDB's MergeReader); the vectorized equivalent lives
  in :mod:`repro.storage.merge`.
"""

from __future__ import annotations

import heapq
import threading

import numpy as np

from ..core.index import BinarySearchIndex, ChunkIndex
from ..core.series import Point
from ..errors import StorageError
from .deletes import DeleteList
from .merge import merge_arrays


class MetadataReader:
    """Pure-metadata access to a series' chunks."""

    def __init__(self, chunk_metadata_list, stats=None):
        self._chunks = list(chunk_metadata_list)
        self._stats = stats

    def all_chunks(self):
        """Every chunk's metadata, in version order."""
        self._account(len(self._chunks))
        return sorted(self._chunks, key=lambda m: m.version)

    def chunks_overlapping(self, t_start, t_end):
        """Metadata of chunks whose interval intersects ``[t_start, t_end)``."""
        out = [m for m in self._chunks
               if m.statistics.overlaps(t_start, t_end)]
        self._account(len(out))
        return sorted(out, key=lambda m: m.version)

    def _account(self, n):
        if self._stats is not None:
            self._stats.add(metadata_reads=n)


class DataReader:
    """Chunk data access with page-level granularity and delete handling.

    Args:
        reader_pool: callable ``path -> TsFileReader`` (the engine's pool).
        stats: shared :class:`IoStats` (same one the TsFileReaders charge).
    """

    def __init__(self, reader_pool, stats=None, shared_cache=None):
        self._reader_pool = reader_pool
        self._stats = stats
        self._page_cache = {}
        self._page_lock = threading.Lock()
        self._shared_cache = shared_cache

    # -- page / chunk loading ---------------------------------------------------

    def _reader(self, chunk_meta):
        if not chunk_meta.file_path:
            raise StorageError("chunk metadata has no file location")
        return self._reader_pool(chunk_meta.file_path)

    def page_timestamps(self, chunk_meta, page_index):
        """Decoded time column of one page (cached)."""
        key = (chunk_meta.file_path, chunk_meta.data_offset, page_index, "t")
        return self._cached_page(
            key, lambda: self._reader(chunk_meta)
            .read_page_timestamps(chunk_meta, page_index))

    def page_values(self, chunk_meta, page_index):
        """Decoded value column of one page (cached)."""
        key = (chunk_meta.file_path, chunk_meta.data_offset, page_index, "v")
        return self._cached_page(
            key, lambda: self._reader(chunk_meta)
            .read_page_values(chunk_meta, page_index))

    def _cached_page(self, key, decode):
        """Per-query map first, then the engine's shared cache, then
        an actual (counted) decode.

        Thread-safe for the parallel chunk pipeline: the per-query map
        is guarded by a lock, and the decode itself runs outside it so
        pool workers decode different pages concurrently.  Two workers
        racing on the *same* page may both decode it — the arrays are
        identical, so the race is benign (the duplicate is dropped).
        """
        with self._page_lock:
            if key in self._page_cache:
                return self._page_cache[key]
        array = None
        if self._shared_cache is not None:
            array = self._shared_cache.get(key)
        if array is None:
            array = decode()
            if self._shared_cache is not None:
                self._shared_cache.put(key, array)
        with self._page_lock:
            return self._page_cache.setdefault(key, array)

    def load_chunk(self, chunk_meta, deletes=None, time_range=None):
        """Load a chunk's arrays, optionally delete-filtered and clipped.

        Args:
            deletes: a :class:`DeleteList`; only deletes newer than the
                chunk version apply.
            time_range: optional ``(t_start, t_end)`` half-open clip.
        Returns:
            ``(timestamps, values)``.
        """
        if self._stats is not None:
            self._stats.add(chunk_loads=1)
        times = []
        values = []
        for page_index in range(len(chunk_meta.pages)):
            times.append(self.page_timestamps(chunk_meta, page_index))
            values.append(self.page_values(chunk_meta, page_index))
        t = times[0] if len(times) == 1 else np.concatenate(times)
        v = values[0] if len(values) == 1 else np.concatenate(values)
        if time_range is not None:
            lo = int(np.searchsorted(t, time_range[0], side="left"))
            hi = int(np.searchsorted(t, time_range[1], side="left"))
            t, v = t[lo:hi], v[lo:hi]
        if deletes is not None:
            t, v = deletes.apply(t, v, chunk_meta.version)
        return t, v

    def load_chunk_rows(self, chunk_meta, start_row, end_row):
        """Arrays for rows ``[start_row, end_row)`` decoding only the pages
        that cover them (the partial scan of Example 3.4)."""
        row_starts = chunk_meta.page_row_starts()
        first_page = int(np.searchsorted(row_starts, start_row,
                                         side="right")) - 1
        last_page = int(np.searchsorted(row_starts, end_row - 1,
                                        side="right")) - 1
        times = []
        values = []
        for page_index in range(max(first_page, 0), last_page + 1):
            page_start = int(row_starts[page_index])
            t = self.page_timestamps(chunk_meta, page_index)
            v = self.page_values(chunk_meta, page_index)
            lo = max(start_row - page_start, 0)
            hi = min(end_row - page_start, t.size)
            times.append(t[lo:hi])
            values.append(v[lo:hi])
        if not times:
            return (np.empty(0, dtype=np.int64),
                    np.empty(0, dtype=np.float64))
        if len(times) == 1:
            return times[0], values[0]
        return np.concatenate(times), np.concatenate(values)

    def point_at_row(self, chunk_meta, row):
        """The :class:`Point` at a global chunk row, via one page pair."""
        row_starts = chunk_meta.page_row_starts()
        page_index = int(np.searchsorted(row_starts, row, side="right")) - 1
        offset = row - int(row_starts[page_index])
        t = self.page_timestamps(chunk_meta, page_index)
        v = self.page_values(chunk_meta, page_index)
        if offset < 0 or offset >= t.size:
            raise StorageError("row %d out of chunk bounds" % row)
        return Point(int(t[offset]), float(v[offset]))

    # -- chunk indexes -------------------------------------------------------------

    def chunk_index(self, chunk_meta, use_regression=True):
        """Build the chunk index of Definition 3.5 for a chunk.

        With ``use_regression`` (default) the stored step regression is
        used; otherwise the binary-search ablation baseline.  Either way
        lookups decode only the pages they touch.
        """
        def read_page(page_index):
            return self.page_timestamps(chunk_meta, page_index)

        def on_lookup():
            if self._stats is not None:
                self._stats.add(index_lookups=1)

        regression = chunk_meta.step_regression() if use_regression else None
        if regression is not None:
            return ChunkIndex(regression, chunk_meta.page_row_starts(),
                              chunk_meta.n_points, read_page, on_lookup)
        return BinarySearchIndex(
            chunk_meta.page_row_starts(), chunk_meta.page_start_times(),
            chunk_meta.n_points, chunk_meta.start_time, chunk_meta.end_time,
            read_page, on_lookup)

    def clear_cache(self):
        """Drop all decoded pages (simulate a cold query)."""
        with self._page_lock:
            self._page_cache.clear()


class MergeReader:
    """Heap-based streaming merge of chunks, in time order.

    Yields the latest point per timestamp, applying deletes.  Matches
    Definition 2.7 and :func:`repro.storage.merge.merge_arrays` exactly
    (asserted by property tests); kept for fidelity with IoTDB's reader
    and used by the streaming variant of M4-UDF.
    """

    def __init__(self, chunks, deletes=None, stats=None):
        """``chunks``: iterable of ``(timestamps, values, version)``."""
        self._deletes = deletes if deletes is not None else DeleteList()
        self._stats = stats
        self._heap = []
        for chunk_id, (timestamps, values, version) in enumerate(chunks):
            t = np.asarray(timestamps, dtype=np.int64)
            v = np.asarray(values, dtype=np.float64)
            if t.size:
                # Heap entries: (time, -version, chunk_id, row, arrays)
                heapq.heappush(self._heap,
                               (int(t[0]), -version, chunk_id, 0, t, v))

    def __iter__(self):
        heap = self._heap
        while heap:
            t, neg_version, chunk_id, row, times, values = heapq.heappop(heap)
            version = -neg_version
            # Skip lower-version duplicates of the same timestamp.
            while heap and heap[0][0] == t:
                _, dup_neg, dup_id, dup_row, dup_t, dup_v = heapq.heappop(heap)
                if dup_row + 1 < dup_t.size:
                    heapq.heappush(heap, (int(dup_t[dup_row + 1]), dup_neg,
                                          dup_id, dup_row + 1, dup_t, dup_v))
            if row + 1 < times.size:
                heapq.heappush(heap, (int(times[row + 1]), neg_version,
                                      chunk_id, row + 1, times, values))
            if self._stats is not None:
                self._stats.add(points_merged=1)
            if self._deletes.covers(t, min_version=version):
                continue
            yield Point(t, float(values[row]))


def merged_series_arrays(chunks, deletes=None, stats=None):
    """Vectorized merged series with MergeReader-compatible accounting."""
    t, v = merge_arrays(chunks, deletes)
    if stats is not None:
        stats.add(points_merged=sum(np.asarray(c[0]).size for c in chunks))
    return t, v
