"""Page codecs for the TsFile storage layer.

Public surface:

* :class:`Encoding`, :class:`Compression` — on-disk tags
* :func:`encode_page`, :func:`decode_page` — the only entry points the
  rest of the storage layer uses
* individual codecs (:func:`encode_plain`, ...) for direct use and tests
"""

from .bits import BitReader, BitWriter
from .gorilla import decode_gorilla, encode_gorilla
from .plain import decode_plain, encode_plain
from .registry import Compression, Encoding, decode_page, encode_page
from .rle import decode_rle, encode_rle, run_length_split
from .ts2diff import decode_ts2diff, encode_ts2diff, pack_uint64, unpack_uint64
from .varint import (
    encode_signed,
    encode_unsigned,
    read_signed_varint,
    read_unsigned_varint,
    write_signed_varint,
    write_unsigned_varint,
    zigzag_decode,
    zigzag_encode,
)

__all__ = [
    "BitReader",
    "BitWriter",
    "Compression",
    "Encoding",
    "decode_gorilla",
    "decode_page",
    "decode_plain",
    "decode_rle",
    "decode_ts2diff",
    "encode_gorilla",
    "encode_page",
    "encode_plain",
    "encode_rle",
    "encode_signed",
    "encode_ts2diff",
    "encode_unsigned",
    "pack_uint64",
    "read_signed_varint",
    "read_unsigned_varint",
    "run_length_split",
    "unpack_uint64",
    "write_signed_varint",
    "write_unsigned_varint",
    "zigzag_decode",
    "zigzag_encode",
]
