"""Run-length encoding for columns with long runs of repeated values.

Sensor value columns often sit at a constant reading for long stretches;
RLE stores each run once.  Runs are discovered vectorized with numpy.

Layout::

    u32   element count
    c     dtype tag (same tags as PLAIN)
    u32   run count
    raw   run values  (run_count elements of the tagged dtype)
    raw   run lengths (run_count uint32)
"""

from __future__ import annotations

import struct

import numpy as np

from ...errors import EncodingError
from .plain import _CHAR_BY_KIND, _DTYPE_BY_CHAR

_HEADER = struct.Struct("<IcI")


def run_length_split(values):
    """Split an array into ``(run_values, run_lengths)``.

    >>> vals, lens = run_length_split(np.array([5, 5, 7, 7, 7, 5]))
    >>> vals.tolist(), lens.tolist()
    ([5, 7, 5], [2, 3, 1])
    """
    arr = np.asarray(values)
    if arr.size == 0:
        return arr[:0], np.empty(0, dtype=np.uint32)
    # Boundary where a new run starts; NaN != NaN so compare bit patterns
    # for float arrays to keep NaN runs together.
    if arr.dtype.kind == "f":
        comparable = arr.view(np.uint64 if arr.dtype.itemsize == 8 else np.uint32)
    else:
        comparable = arr
    starts = np.flatnonzero(np.concatenate(
        ([True], comparable[1:] != comparable[:-1])))
    lengths = np.diff(np.concatenate((starts, [arr.size])))
    return arr[starts], lengths.astype(np.uint32)


def encode_rle(values):
    """Encode a 1-D int/float 32/64 array as run-length pairs."""
    arr = np.ascontiguousarray(values)
    key = (arr.dtype.kind, arr.dtype.itemsize)
    if key not in _CHAR_BY_KIND:
        raise EncodingError("RLE cannot encode dtype %s" % arr.dtype)
    run_values, run_lengths = run_length_split(arr)
    header = _HEADER.pack(arr.size, _CHAR_BY_KIND[key], run_values.size)
    little = arr.dtype.newbyteorder("<")
    return (header
            + run_values.astype(little, copy=False).tobytes()
            + run_lengths.astype("<u4", copy=False).tobytes())


def decode_rle(data):
    """Decode bytes produced by :func:`encode_rle` back to a numpy array."""
    if len(data) < _HEADER.size:
        raise EncodingError("RLE page shorter than its header")
    count, char, run_count = _HEADER.unpack_from(data)
    if char not in _DTYPE_BY_CHAR:
        raise EncodingError("RLE page has unknown dtype tag %r" % char)
    dtype = _DTYPE_BY_CHAR[char]
    offset = _HEADER.size
    values_end = offset + run_count * dtype.itemsize
    lengths_end = values_end + run_count * 4
    if len(data) < lengths_end:
        raise EncodingError("RLE page truncated")
    run_values = np.frombuffer(data, dtype=dtype, count=run_count, offset=offset)
    run_lengths = np.frombuffer(data, dtype="<u4", count=run_count,
                                offset=values_end)
    if int(run_lengths.sum()) != count:
        raise EncodingError(
            "RLE run lengths sum to %d, expected %d"
            % (int(run_lengths.sum()), count))
    return np.repeat(run_values, run_lengths)
