"""Codec registry: names, enums and the page encode/decode entry points.

A page payload on disk is ``compress(encode(array))``.  The chunk header
records which encoding and compression were used, so any page can be
decoded knowing only its bytes plus those two tags.
"""

from __future__ import annotations

import enum
import zlib

from ...errors import EncodingError
from .gorilla import decode_gorilla, encode_gorilla
from .plain import decode_plain, encode_plain
from .rle import decode_rle, encode_rle
from .ts2diff import decode_ts2diff, encode_ts2diff


class Encoding(enum.IntEnum):
    """Page encodings, mirroring Apache IoTDB's TSEncoding set."""

    PLAIN = 0
    TS_2DIFF = 1
    RLE = 2
    GORILLA = 3


class Compression(enum.IntEnum):
    """Post-encoding compressors, mirroring IoTDB's CompressionType."""

    NONE = 0
    ZLIB = 1


_ENCODERS = {
    Encoding.PLAIN: encode_plain,
    Encoding.TS_2DIFF: encode_ts2diff,
    Encoding.RLE: encode_rle,
    Encoding.GORILLA: encode_gorilla,
}

_DECODERS = {
    Encoding.PLAIN: decode_plain,
    Encoding.TS_2DIFF: decode_ts2diff,
    Encoding.RLE: decode_rle,
    Encoding.GORILLA: decode_gorilla,
}


def encode_page(values, encoding, compression=Compression.NONE):
    """Encode a 1-D numpy array into page payload bytes."""
    try:
        encoder = _ENCODERS[Encoding(encoding)]
    except (KeyError, ValueError):
        raise EncodingError("unknown encoding %r" % (encoding,)) from None
    payload = encoder(values)
    if compression == Compression.ZLIB:
        payload = zlib.compress(payload)
    elif compression != Compression.NONE:
        raise EncodingError("unknown compression %r" % (compression,))
    return payload


def decode_page(data, encoding, compression=Compression.NONE):
    """Decode page payload bytes back into a numpy array."""
    if compression == Compression.ZLIB:
        try:
            data = zlib.decompress(data)
        except zlib.error as exc:
            raise EncodingError("zlib decompression failed: %s" % exc) from exc
    elif compression != Compression.NONE:
        raise EncodingError("unknown compression %r" % (compression,))
    try:
        decoder = _DECODERS[Encoding(encoding)]
    except (KeyError, ValueError):
        raise EncodingError("unknown encoding %r" % (encoding,)) from None
    return decoder(data)
