"""PLAIN encoding: raw little-endian arrays.

The simplest codec — no compression at all — used as the default for
float64 value columns and as the correctness reference the other codecs
are tested against.
"""

from __future__ import annotations

import struct

import numpy as np

from ...errors import EncodingError

_HEADER = struct.Struct("<cI")  # dtype char, element count

_DTYPE_BY_CHAR = {
    b"q": np.dtype("<i8"),
    b"d": np.dtype("<f8"),
    b"i": np.dtype("<i4"),
    b"f": np.dtype("<f4"),
}
_CHAR_BY_KIND = {
    ("i", 8): b"q",
    ("f", 8): b"d",
    ("i", 4): b"i",
    ("f", 4): b"f",
}


def encode_plain(values):
    """Encode a 1-D numpy array of int/float 32/64 as raw bytes.

    The 5-byte header records the dtype and the element count so the
    decoder needs no out-of-band schema.
    """
    arr = np.ascontiguousarray(values)
    key = (arr.dtype.kind, arr.dtype.itemsize)
    if key not in _CHAR_BY_KIND:
        raise EncodingError("PLAIN cannot encode dtype %s" % arr.dtype)
    char = _CHAR_BY_KIND[key]
    return _HEADER.pack(char, arr.size) + arr.astype(
        arr.dtype.newbyteorder("<"), copy=False).tobytes()


def decode_plain(data):
    """Decode bytes produced by :func:`encode_plain` back to a numpy array."""
    if len(data) < _HEADER.size:
        raise EncodingError("PLAIN page shorter than its header")
    char, count = _HEADER.unpack_from(data)
    if char not in _DTYPE_BY_CHAR:
        raise EncodingError("PLAIN page has unknown dtype tag %r" % char)
    dtype = _DTYPE_BY_CHAR[char]
    expected = _HEADER.size + count * dtype.itemsize
    if len(data) < expected:
        raise EncodingError(
            "PLAIN page truncated: need %d bytes, have %d" % (expected, len(data)))
    return np.frombuffer(data, dtype=dtype, count=count, offset=_HEADER.size).copy()
