"""Gorilla XOR compression for float64 columns.

The scheme from Facebook's Gorilla TSDB (Pelkonen et al., VLDB 2015), as
also shipped in Apache IoTDB: each value is XORed with its predecessor and
only the meaningful (non-zero) bits are stored.  Slowly-varying sensor
values compress extremely well.

This codec is inherently sequential, so it is implemented on the bit
reader/writer rather than numpy.  It is offered for storage-size fidelity;
latency-sensitive benchmarks default to PLAIN/TS_2DIFF.

Per value (after the first, which is stored raw):

* control bit ``0``         — value identical to predecessor
* control bits ``10``       — XOR fits the previous leading/trailing window
* control bits ``11``       — new window: 5 bits leading-zero count,
  6 bits significant length, then the significant XOR bits
"""

from __future__ import annotations

import struct

import numpy as np

from ...errors import EncodingError
from .bits import BitReader, BitWriter

_COUNT = struct.Struct("<I")
_F64 = struct.Struct("<d")


def _float_to_bits(value):
    return struct.unpack("<Q", struct.pack("<d", value))[0]


def _bits_to_float(bits):
    return struct.unpack("<d", struct.pack("<Q", bits))[0]


def _leading_zeros(value):
    return 64 - value.bit_length() if value else 64


def _trailing_zeros(value):
    if value == 0:
        return 64
    return (value & -value).bit_length() - 1


def encode_gorilla(values):
    """Encode a 1-D float64 array with Gorilla XOR compression."""
    arr = np.ascontiguousarray(values, dtype=np.float64)
    out = bytearray(_COUNT.pack(arr.size))
    if arr.size == 0:
        return bytes(out)
    out += _F64.pack(float(arr[0]))
    writer = BitWriter()
    prev_bits = _float_to_bits(float(arr[0]))
    prev_leading = -1
    prev_sig_length = 0
    for value in arr[1:]:
        bits = _float_to_bits(float(value))
        xor = prev_bits ^ bits
        if xor == 0:
            writer.write_bit(0)
        else:
            writer.write_bit(1)
            leading = min(_leading_zeros(xor), 31)
            trailing = _trailing_zeros(xor)
            sig_length = 64 - leading - trailing
            fits_previous = (prev_leading >= 0
                             and leading >= prev_leading
                             and sig_length <= prev_sig_length
                             and 64 - prev_leading - prev_sig_length <= trailing)
            if fits_previous:
                writer.write_bit(0)
                shift = 64 - prev_leading - prev_sig_length
                writer.write_bits(xor >> shift, prev_sig_length)
            else:
                writer.write_bit(1)
                writer.write_bits(leading, 5)
                # 6 bits can hold 1..64 with 64 encoded as 0.
                writer.write_bits(sig_length & 0x3F, 6)
                writer.write_bits(xor >> trailing, sig_length)
                prev_leading = leading
                prev_sig_length = sig_length
        prev_bits = bits
    out += writer.to_bytes()
    return bytes(out)


def decode_gorilla(data):
    """Decode bytes produced by :func:`encode_gorilla` to a float64 array."""
    if len(data) < _COUNT.size:
        raise EncodingError("GORILLA page shorter than its header")
    (count,) = _COUNT.unpack_from(data)
    if count == 0:
        return np.empty(0, dtype=np.float64)
    offset = _COUNT.size
    if len(data) < offset + _F64.size:
        raise EncodingError("GORILLA page missing first value")
    (first,) = _F64.unpack_from(data, offset)
    offset += _F64.size
    out = np.empty(count, dtype=np.float64)
    out[0] = first
    reader = BitReader(data[offset:])
    prev_bits = _float_to_bits(first)
    leading = 0
    sig_length = 0
    for i in range(1, count):
        if reader.read_bit() == 0:
            out[i] = _bits_to_float(prev_bits)
            continue
        if reader.read_bit() == 1:
            leading = reader.read_bits(5)
            sig_length = reader.read_bits(6) or 64
        shift = 64 - leading - sig_length
        xor = reader.read_bits(sig_length) << shift
        prev_bits ^= xor
        out[i] = _bits_to_float(prev_bits)
    return out
