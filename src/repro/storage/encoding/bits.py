"""Bit-level reader/writer used by the sequential codecs.

The Gorilla codec (and the varint fallback paths) need sub-byte access.
:class:`BitWriter` accumulates bits most-significant-first into a
:class:`bytearray`; :class:`BitReader` replays them.  Both are deliberately
simple: the bulk codecs (TS_2DIFF) bypass them entirely and use vectorized
``numpy.packbits`` instead.
"""

from __future__ import annotations

from ...errors import EncodingError


class BitWriter:
    """Accumulates bits most-significant-bit first.

    >>> w = BitWriter()
    >>> w.write_bit(1)
    >>> w.write_bits(0b0101, 4)
    >>> w.to_bytes().hex()
    'a8'
    """

    def __init__(self):
        self._buffer = bytearray()
        self._current = 0
        self._n_bits = 0  # bits currently held in _current, 0..7

    def write_bit(self, bit):
        """Append a single bit (0 or 1)."""
        self._current = (self._current << 1) | (bit & 1)
        self._n_bits += 1
        if self._n_bits == 8:
            self._buffer.append(self._current)
            self._current = 0
            self._n_bits = 0

    def write_bits(self, value, n_bits):
        """Append the ``n_bits`` low-order bits of ``value``, MSB first."""
        if n_bits < 0 or n_bits > 64:
            raise EncodingError("bit width must be in [0, 64], got %d" % n_bits)
        for shift in range(n_bits - 1, -1, -1):
            self.write_bit((value >> shift) & 1)

    @property
    def bit_length(self):
        """Total number of bits written so far."""
        return len(self._buffer) * 8 + self._n_bits

    def to_bytes(self):
        """Return the written bits, zero-padded to a whole byte."""
        out = bytearray(self._buffer)
        if self._n_bits:
            out.append((self._current << (8 - self._n_bits)) & 0xFF)
        return bytes(out)


class BitReader:
    """Replays bits produced by :class:`BitWriter`.

    >>> r = BitReader(bytes([0b10110000]))
    >>> r.read_bit(), r.read_bits(3)
    (1, 3)
    """

    def __init__(self, data):
        self._data = data
        self._byte_pos = 0
        self._bit_pos = 0

    def read_bit(self):
        """Read the next single bit; raises :class:`EncodingError` at EOF."""
        if self._byte_pos >= len(self._data):
            raise EncodingError("bit stream exhausted")
        byte = self._data[self._byte_pos]
        bit = (byte >> (7 - self._bit_pos)) & 1
        self._bit_pos += 1
        if self._bit_pos == 8:
            self._bit_pos = 0
            self._byte_pos += 1
        return bit

    def read_bits(self, n_bits):
        """Read ``n_bits`` bits MSB-first and return them as an unsigned int."""
        value = 0
        for _ in range(n_bits):
            value = (value << 1) | self.read_bit()
        return value

    @property
    def bits_remaining(self):
        """Number of unread bits (including any trailing zero padding)."""
        return (len(self._data) - self._byte_pos) * 8 - self._bit_pos
