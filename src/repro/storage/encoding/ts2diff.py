"""TS_2DIFF delta encoding with bit packing, after Apache IoTDB.

Timestamps collected at a regular frequency have near-constant deltas, so
storing ``delta - min_delta`` in the minimum number of bits compresses a
regular int64 timestamp column by an order of magnitude.  Encode and decode
are fully vectorized with numpy (``packbits`` / ``unpackbits``); there is no
per-point Python loop.

Layout::

    u32   count
    i64   first value            (only if count >= 1)
    i64   min delta              (only if count >= 2)
    u8    bit width w
    bytes ceil((count-1) * w / 8) packed reduced deltas (only if w > 0)
"""

from __future__ import annotations

import struct

import numpy as np

from ...errors import EncodingError

_COUNT = struct.Struct("<I")
_I64 = struct.Struct("<q")
_U8 = struct.Struct("<B")


def _bit_width(max_value):
    """Minimum number of bits needed to store ``max_value`` (unsigned)."""
    return int(max_value).bit_length()


def pack_uint64(values, width):
    """Bit-pack a uint64 array into ``width`` bits per element, MSB first."""
    if width == 0:
        return b""
    shifts = np.arange(width - 1, -1, -1, dtype=np.uint64)
    bits = ((values[:, None] >> shifts) & np.uint64(1)).astype(np.uint8)
    return np.packbits(bits.ravel()).tobytes()


def unpack_uint64(data, count, width):
    """Inverse of :func:`pack_uint64`; returns a uint64 array of ``count``."""
    if width == 0:
        return np.zeros(count, dtype=np.uint64)
    total_bits = count * width
    raw = np.frombuffer(data, dtype=np.uint8)
    if raw.size * 8 < total_bits:
        raise EncodingError(
            "bit-packed payload truncated: need %d bits, have %d"
            % (total_bits, raw.size * 8))
    bits = np.unpackbits(raw, count=total_bits).reshape(count, width)
    out = np.zeros(count, dtype=np.uint64)
    # Accumulate one bit column at a time: at most 64 vectorized passes.
    for column in range(width):
        out = (out << np.uint64(1)) | bits[:, column].astype(np.uint64)
    return out


def encode_ts2diff(values):
    """Encode an int64 array; optimal when deltas are near-constant."""
    arr = np.ascontiguousarray(values, dtype=np.int64)
    if arr.ndim != 1:
        raise EncodingError("TS_2DIFF expects a 1-D array")
    out = bytearray(_COUNT.pack(arr.size))
    if arr.size == 0:
        return bytes(out)
    out += _I64.pack(int(arr[0]))
    if arr.size == 1:
        return bytes(out)
    deltas = np.diff(arr)
    min_delta = int(deltas.min())
    reduced = (deltas - min_delta).astype(np.uint64)
    width = _bit_width(int(reduced.max()))
    out += _I64.pack(min_delta)
    out += _U8.pack(width)
    out += pack_uint64(reduced, width)
    return bytes(out)


def decode_ts2diff(data):
    """Decode bytes produced by :func:`encode_ts2diff` to an int64 array."""
    if len(data) < _COUNT.size:
        raise EncodingError("TS_2DIFF page shorter than its header")
    (count,) = _COUNT.unpack_from(data)
    offset = _COUNT.size
    if count == 0:
        return np.empty(0, dtype=np.int64)
    if len(data) < offset + _I64.size:
        raise EncodingError("TS_2DIFF page missing first value")
    (first,) = _I64.unpack_from(data, offset)
    offset += _I64.size
    if count == 1:
        return np.array([first], dtype=np.int64)
    if len(data) < offset + _I64.size + _U8.size:
        raise EncodingError("TS_2DIFF page missing delta header")
    (min_delta,) = _I64.unpack_from(data, offset)
    offset += _I64.size
    (width,) = _U8.unpack_from(data, offset)
    offset += _U8.size
    reduced = unpack_uint64(data[offset:], count - 1, width)
    deltas = reduced.astype(np.int64) + min_delta
    out = np.empty(count, dtype=np.int64)
    out[0] = first
    np.cumsum(deltas, out=out[1:])
    out[1:] += first
    return out
