"""Variable-length integer encoding (LEB128) with zigzag for signed values.

Used for file-format metadata fields (counts, offsets, version numbers)
where values are usually small.  Bulk page payloads use the vectorized
codecs in :mod:`repro.storage.encoding.ts2diff` instead.
"""

from __future__ import annotations

from ...errors import EncodingError

_MAX_VARINT_BYTES = 10  # enough for a 64-bit value, 7 bits per byte


def zigzag_encode(value):
    """Map a signed int to an unsigned int with small absolute values first.

    >>> [zigzag_encode(v) for v in (0, -1, 1, -2, 2)]
    [0, 1, 2, 3, 4]
    """
    return (value << 1) ^ (value >> 63) if value < 0 else value << 1


def zigzag_decode(value):
    """Inverse of :func:`zigzag_encode`."""
    return (value >> 1) ^ -(value & 1)


def write_unsigned_varint(value, buffer):
    """Append ``value`` (non-negative int) to ``buffer`` as LEB128 bytes."""
    if value < 0:
        raise EncodingError("unsigned varint cannot encode %d" % value)
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            buffer.append(byte | 0x80)
        else:
            buffer.append(byte)
            return


def read_unsigned_varint(data, offset):
    """Read a LEB128 value from ``data`` at ``offset``.

    Returns ``(value, next_offset)``.
    """
    value = 0
    shift = 0
    for i in range(_MAX_VARINT_BYTES):
        pos = offset + i
        if pos >= len(data):
            raise EncodingError("truncated varint at offset %d" % offset)
        byte = data[pos]
        value |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return value, pos + 1
        shift += 7
    raise EncodingError("varint longer than %d bytes" % _MAX_VARINT_BYTES)


def write_signed_varint(value, buffer):
    """Append a signed int to ``buffer`` as zigzag + LEB128."""
    write_unsigned_varint(zigzag_encode(value), buffer)


def read_signed_varint(data, offset):
    """Read a zigzag + LEB128 signed value; returns ``(value, next_offset)``."""
    value, next_offset = read_unsigned_varint(data, offset)
    return zigzag_decode(value), next_offset


def encode_unsigned(value):
    """Convenience wrapper returning the LEB128 bytes for one value."""
    buffer = bytearray()
    write_unsigned_varint(value, buffer)
    return bytes(buffer)


def encode_signed(value):
    """Convenience wrapper returning the zigzag LEB128 bytes for one value."""
    buffer = bytearray()
    write_signed_varint(value, buffer)
    return bytes(buffer)
