"""Chunks (Definition 2.4): read-only segments of a series on disk.

``write_chunk`` turns a time-ordered array pair into the encoded data
block plus a :class:`ChunkMetadata` describing it: version number, the
FP/LP/BP/TP statistics the M4-LSM operator feeds on, a per-page
directory for partial reads, and the serialized step regression index.
"""

from __future__ import annotations

import dataclasses
import struct
import zlib

import numpy as np

from ..core.index import StepRegression
from ..errors import StorageError, StepRegressionError
from .config import DEFAULT_CONFIG
from .encoding import Compression, Encoding, encode_page
from .page import PageMetadata, split_rows
from .statistics import Statistics

_META_HEADER = struct.Struct("<IqBBBHI")
# series_id, version, time_enc, value_enc, compression, n_pages, index_len


@dataclasses.dataclass(frozen=True)
class ChunkMetadata:
    """Everything known about a chunk without touching its data block."""

    series_id: int
    version: int
    statistics: Statistics
    pages: tuple  # of PageMetadata
    time_encoding: Encoding
    value_encoding: Encoding
    compression: Compression
    index_bytes: bytes        # serialized StepRegression ('' if not built)
    file_path: str = ""       # set when the chunk lands in a TsFile
    data_offset: int = 0      # offset of the data block within the file
    data_length: int = 0

    @property
    def n_points(self):
        """Total points in the chunk."""
        return self.statistics.count

    @property
    def start_time(self):
        """First timestamp (``FP(C).t``)."""
        return self.statistics.start_time

    @property
    def end_time(self):
        """Last timestamp (``LP(C).t``)."""
        return self.statistics.end_time

    def page_row_starts(self):
        """Int64 array with each page's first row in the chunk."""
        return np.array([p.first_row for p in self.pages], dtype=np.int64)

    def page_start_times(self):
        """Int64 array with each page's first timestamp."""
        return np.array([p.statistics.start_time for p in self.pages],
                        dtype=np.int64)

    def step_regression(self):
        """Deserialize the stored step regression (None if absent)."""
        if not self.index_bytes:
            return None
        regression, _ = StepRegression.from_bytes(self.index_bytes)
        return regression

    def located(self, file_path, data_offset, data_length):
        """A copy bound to its final location inside a TsFile."""
        return dataclasses.replace(self, file_path=file_path,
                                   data_offset=data_offset,
                                   data_length=data_length)

    # -- serialization ---------------------------------------------------------------

    def to_bytes(self, format_version=2):
        """Binary form stored in the TsFile metadata section.

        File path and data offsets are appended by the TsFile writer, so
        they are included here.  ``format_version`` selects the page
        directory layout (v2 adds per-payload CRCs).
        """
        out = bytearray(_META_HEADER.pack(
            self.series_id, int(self.version), int(self.time_encoding),
            int(self.value_encoding), int(self.compression),
            len(self.pages), len(self.index_bytes)))
        out += struct.pack("<QQ", self.data_offset, self.data_length)
        out += self.statistics.to_bytes()
        for page in self.pages:
            out += page.to_bytes(format_version)
        out += self.index_bytes
        return bytes(out)

    @classmethod
    def from_bytes(cls, data, offset=0, file_path="", format_version=2):
        """Inverse of :meth:`to_bytes`; returns ``(metadata, next_offset)``."""
        if len(data) - offset < _META_HEADER.size + 16:
            raise StorageError("truncated chunk metadata header")
        (series_id, version, time_enc, value_enc, compression,
         n_pages, index_len) = _META_HEADER.unpack_from(data, offset)
        offset += _META_HEADER.size
        data_offset, data_length = struct.unpack_from("<QQ", data, offset)
        offset += 16
        stats = Statistics.from_bytes(data, offset)
        offset += Statistics.SERIALIZED_SIZE
        pages = []
        for _ in range(n_pages):
            page, offset = PageMetadata.from_bytes(data, offset,
                                                   format_version)
            pages.append(page)
        index_bytes = bytes(data[offset:offset + index_len])
        if len(index_bytes) != index_len:
            raise StorageError("truncated chunk index bytes")
        offset += index_len
        meta = cls(series_id, int(version), stats, tuple(pages),
                   Encoding(time_enc), Encoding(value_enc),
                   Compression(compression), index_bytes,
                   file_path=file_path, data_offset=data_offset,
                   data_length=data_length)
        return meta, offset


def write_chunk(series_id, version, timestamps, values, config=DEFAULT_CONFIG):
    """Encode a chunk; returns ``(data_block_bytes, ChunkMetadata)``.

    The metadata is unlocated (no file path/offset) until a TsFile writer
    places the data block.
    """
    t = np.ascontiguousarray(timestamps, dtype=np.int64)
    v = np.ascontiguousarray(values, dtype=np.float64)
    if t.size == 0:
        raise StorageError("cannot write an empty chunk")
    if t.size != v.size:
        raise StorageError("time/value length mismatch")

    payloads = []
    pages = []
    cursor = 0
    for start, end in split_rows(t.size, config.points_per_page):
        time_payload = encode_page(t[start:end], config.time_encoding,
                                   config.compression)
        value_payload = encode_page(v[start:end], config.value_encoding,
                                    config.compression)
        stats = Statistics.from_arrays(t[start:end], v[start:end])
        pages.append(PageMetadata(
            statistics=stats,
            first_row=start,
            time_offset=cursor,
            time_length=len(time_payload),
            value_offset=cursor + len(time_payload),
            value_length=len(value_payload),
            time_crc=zlib.crc32(time_payload),
            value_crc=zlib.crc32(value_payload),
        ))
        payloads.append(time_payload)
        payloads.append(value_payload)
        cursor += len(time_payload) + len(value_payload)

    index_bytes = b""
    if config.build_chunk_index and t.size >= 2:
        try:
            index_bytes = StepRegression.fit(t).to_bytes()
        except StepRegressionError:
            index_bytes = b""

    metadata = ChunkMetadata(
        series_id=series_id,
        version=version,
        statistics=Statistics.from_arrays(t, v),
        pages=tuple(pages),
        time_encoding=config.time_encoding,
        value_encoding=config.value_encoding,
        compression=config.compression,
        index_bytes=index_bytes,
    )
    return b"".join(payloads), metadata
