"""The merge function M(C, D) of Definition 2.7.

Two interchangeable implementations:

* :func:`merge_arrays` — vectorized; sorts all points by (time, version)
  and keeps the highest-version survivor per timestamp after applying the
  deletes.  Used on the M4-UDF hot path.
* :func:`merge_reference` — a direct, point-at-a-time transcription of
  Definition 2.7, kept as the oracle for property tests.

Both take chunks as ``(timestamps, values, version)`` triples, so they
work on in-memory data and on arrays decoded from TsFiles alike.
"""

from __future__ import annotations

import numpy as np

from ..core.series import TimeSeries
from .deletes import DeleteList


def merge_arrays(chunks, deletes=None):
    """Vectorized M(C, D); returns ``(timestamps, values)`` sorted by time.

    Args:
        chunks: iterable of ``(timestamps, values, version)``.
        deletes: optional :class:`DeleteList` (or iterable of deletes).
    """
    delete_list = _as_delete_list(deletes)
    time_parts = []
    value_parts = []
    version_parts = []
    for timestamps, values, version in chunks:
        t = np.asarray(timestamps, dtype=np.int64)
        v = np.asarray(values, dtype=np.float64)
        if delete_list:
            t, v = delete_list.apply(t, v, version)
        if t.size == 0:
            continue
        time_parts.append(t)
        value_parts.append(v)
        version_parts.append(np.full(t.size, version, dtype=np.int64))
    if not time_parts:
        return (np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float64))
    t = np.concatenate(time_parts)
    v = np.concatenate(value_parts)
    versions = np.concatenate(version_parts)
    order = np.lexsort((versions, t))  # by time, then version
    t = t[order]
    v = v[order]
    keep = np.concatenate((t[1:] != t[:-1], [True]))  # max version per time
    return t[keep], v[keep]


def merge_to_series(chunks, deletes=None):
    """:func:`merge_arrays` wrapped into a :class:`TimeSeries`."""
    t, v = merge_arrays(chunks, deletes)
    return TimeSeries(t, v, validate=False)


def merge_reference(chunks, deletes=None):
    """Literal Definition 2.7, point by point.  O(n * (chunks + deletes)).

    A point ``P`` of chunk ``C^k`` survives iff no chunk with a larger
    version contains a point at ``P.t`` and no delete with a larger
    version covers ``P.t``.
    """
    delete_list = _as_delete_list(deletes)
    chunk_list = [(np.asarray(t, dtype=np.int64),
                   np.asarray(v, dtype=np.float64), version)
                  for t, v, version in chunks]
    survivors = {}
    for timestamps, values, version in chunk_list:
        for t, v in zip(timestamps, values):
            t = int(t)
            updated = any(
                other_version > version and t in set(map(int, other_t))
                for other_t, _other_v, other_version in chunk_list
                if other_version != version)
            deleted = delete_list.covers(t, min_version=version)
            if updated or deleted:
                continue
            survivors[t] = float(v)
    times = np.array(sorted(survivors), dtype=np.int64)
    values = np.array([survivors[int(t)] for t in times], dtype=np.float64)
    return times, values


def _as_delete_list(deletes):
    if deletes is None:
        return DeleteList()
    if isinstance(deletes, DeleteList):
        return deletes
    return DeleteList(list(deletes))
