"""Series catalog: the persistent name <-> id registry.

Chunk metadata and the mods log identify series by numeric id; the
catalog is the append-only file that makes those ids meaningful across
restarts.

Record layout (little endian, format v2)::

    u32 series_id, u16 name_length, name bytes, u32 crc32(header + name)

Because records are variable length, a flipped ``name_length`` would
mis-frame everything after it; the CRC covers the header too, so any
such flip fails the very record it lands in instead of silently eating
its successors.  A short final record (crash mid-append) is a torn
tail: truncate, warn, keep prior registrations.  v1 (seed) files have
no checksums and read as before.
"""

from __future__ import annotations

import logging
import os
import struct
import zlib

from ..errors import CorruptFileError
from . import faultfs

MAGIC = b"CATv2\n\0\0"
MAGIC_V1 = b"CATv1\n\0\0"
_HEADER = struct.Struct("<IH")  # series_id, name length
_CRC = struct.Struct("<I")

log = logging.getLogger("repro.storage.catalog")


class CatalogFile:
    """Append-only log of ``(series_id, name)`` registrations."""

    def __init__(self, path):
        self._path = os.fspath(path)
        if not os.path.exists(self._path):
            with faultfs.fopen(self._path, "wb") as f:
                f.write(MAGIC)

    @property
    def path(self):
        """Location of the catalog file."""
        return self._path

    def append(self, series_id, name):
        """Persist one series registration (flushed before returning)."""
        encoded = name.encode("utf-8")
        payload = _HEADER.pack(series_id, len(encoded)) + encoded
        with faultfs.fopen(self._path, "ab") as f:
            f.write(payload + _CRC.pack(zlib.crc32(payload)))
            f.flush()

    def read_all(self, repair=True, report=None):
        """Yield every ``(series_id, name)`` in registration order.

        Torn-tail policy matches the WAL and mods log: a short final
        record is truncated (when ``repair``) with a warning; a
        complete record with a CRC mismatch raises
        :class:`CorruptFileError`.
        """
        size = os.path.getsize(self._path)
        with faultfs.fopen(self._path, "rb") as f:
            head = f.read(len(MAGIC))
            if head == MAGIC:
                checked = True
            elif head == MAGIC_V1:
                checked = False
            elif MAGIC.startswith(head) or MAGIC_V1.startswith(head):
                self._torn(len(head), 0, repair, report,
                           "torn catalog header")
                return
            else:
                raise CorruptFileError(
                    "%s: bad catalog magic" % self._path, path=self._path)
            offset = len(head)
            while True:
                raw = f.read(_HEADER.size)
                if not raw:
                    return
                trailer = _CRC.size if checked else 0
                if len(raw) < _HEADER.size:
                    self._torn(offset, size - offset, repair, report,
                               "torn catalog header record")
                    return
                series_id, name_length = _HEADER.unpack(raw)
                rest = f.read(name_length + trailer)
                if len(rest) < name_length + trailer:
                    # Could be a genuine torn tail *or* a flipped
                    # name_length pointing past EOF.  With checksums we
                    # can tell: a torn tail is only plausible when the
                    # claimed record would have ended past the file.
                    self._torn(offset, size - offset, repair, report,
                               "torn catalog record")
                    return
                encoded = rest[:name_length]
                if checked:
                    (crc,) = _CRC.unpack(rest[name_length:])
                    if zlib.crc32(raw + encoded) != crc:
                        raise CorruptFileError(
                            "%s: catalog record CRC mismatch at offset %d"
                            % (self._path, offset), path=self._path)
                try:
                    name = encoded.decode("utf-8")
                except UnicodeDecodeError as exc:
                    raise CorruptFileError(
                        "%s: undecodable catalog name at offset %d: %s"
                        % (self._path, offset, exc),
                        path=self._path) from exc
                offset += _HEADER.size + name_length + trailer
                yield series_id, name

    def _torn(self, keep_bytes, torn_bytes, repair, report, what):
        log.warning("%s: %s (%d bytes) — keeping prior records",
                    self._path, what, torn_bytes)
        if report is not None:
            report({"file": self._path, "severity": "warning",
                    "issue": what, "torn_bytes": torn_bytes})
        if repair:
            if keep_bytes < len(MAGIC):
                with faultfs.fopen(self._path, "wb") as f:
                    f.write(MAGIC)
            else:
                os.truncate(self._path, keep_bytes)
