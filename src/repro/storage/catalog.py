"""Series catalog: the persistent name <-> id registry.

Chunk metadata and the mods log identify series by numeric id; the
catalog is the append-only file that makes those ids meaningful across
restarts.
"""

from __future__ import annotations

import os
import struct

from ..errors import CorruptFileError

MAGIC = b"CATv1\n\0\0"
_HEADER = struct.Struct("<IH")  # series_id, name length


class CatalogFile:
    """Append-only log of ``(series_id, name)`` registrations."""

    def __init__(self, path):
        self._path = os.fspath(path)
        if not os.path.exists(self._path):
            with open(self._path, "wb") as f:
                f.write(MAGIC)

    @property
    def path(self):
        """Location of the catalog file."""
        return self._path

    def append(self, series_id, name):
        """Persist one series registration."""
        encoded = name.encode("utf-8")
        with open(self._path, "ab") as f:
            f.write(_HEADER.pack(series_id, len(encoded)))
            f.write(encoded)

    def read_all(self):
        """Yield every ``(series_id, name)`` in registration order."""
        with open(self._path, "rb") as f:
            head = f.read(len(MAGIC))
            if head != MAGIC:
                raise CorruptFileError("%s: bad catalog magic" % self._path)
            while True:
                raw = f.read(_HEADER.size)
                if not raw:
                    return
                if len(raw) < _HEADER.size:
                    raise CorruptFileError(
                        "%s: truncated catalog header" % self._path)
                series_id, name_length = _HEADER.unpack(raw)
                encoded = f.read(name_length)
                if len(encoded) < name_length:
                    raise CorruptFileError(
                        "%s: truncated catalog name" % self._path)
                yield series_id, encoded.decode("utf-8")
