"""Cooperative per-request deadlines for query execution.

A :class:`Deadline` is an absolute time budget.  The serving layer
installs one for the current thread with :func:`deadline_scope`; the
engine's long-running query phases call :func:`check_deadline` at their
natural cancellation points — per chunk in the pipeline fan-out, per
span in the M4-LSM solve loop — and abort with
:class:`~repro.errors.DeadlineExceededError` once the budget is spent.

Cancellation is *cooperative*: nothing is interrupted mid-decode, so a
chunk that started loading finishes and the abort happens at the next
checkpoint.  That keeps shared state (reader pool, chunk cache, I/O
counters) consistent without any locking beyond what the engine already
has.  The chunk pipeline re-installs the submitting thread's deadline
inside its worker threads (see ``ChunkPipeline.map_ordered``), so
cancellation propagates across the fan-out and queued work items fail
fast instead of running after their request has already been answered.
"""

from __future__ import annotations

import threading
import time

from ..errors import DeadlineExceededError
from ..obs.tracer import attach_timed

_local = threading.local()


class Deadline:
    """An absolute expiry on the monotonic clock.

    >>> d = Deadline(10.0)
    >>> d.expired()
    False
    """

    __slots__ = ("expires_at",)

    def __init__(self, seconds):
        self.expires_at = time.monotonic() + float(seconds)

    def remaining(self):
        """Seconds left before expiry (negative once expired)."""
        return self.expires_at - time.monotonic()

    def expired(self):
        """True once the budget is spent."""
        return time.monotonic() >= self.expires_at

    def check(self):
        """Raise :class:`DeadlineExceededError` when expired.

        When a request trace is active on this thread, the abort leaves
        a zero-width ``deadline.exceeded`` marker span behind, so the
        trace shows *where* in the tree the budget ran out.  The
        non-expired path stays span-free.
        """
        if self.expired():
            past = -self.remaining()
            now = time.perf_counter()
            attach_timed("deadline.exceeded", now, now, past_s=round(past, 6))
            raise DeadlineExceededError(
                "deadline exceeded (%.3fs past expiry)" % past)


def current_deadline():
    """The deadline installed for this thread, or None."""
    return getattr(_local, "deadline", None)


def check_deadline():
    """Checkpoint: raise if the current thread's deadline has expired.

    A no-op when no deadline is installed, so query code can call it
    unconditionally on hot paths.
    """
    deadline = getattr(_local, "deadline", None)
    if deadline is not None:
        deadline.check()


class deadline_scope:
    """Install ``deadline`` as the current thread's deadline.

    Nests: the previous deadline (if any) is restored on exit.  Passing
    ``None`` is a no-op scope, which lets callers write one
    ``with deadline_scope(maybe_deadline):`` without branching.
    """

    __slots__ = ("_deadline", "_previous")

    def __init__(self, deadline):
        self._deadline = deadline
        self._previous = None

    def __enter__(self):
        self._previous = getattr(_local, "deadline", None)
        if self._deadline is not None:
            _local.deadline = self._deadline
        return self._deadline

    def __exit__(self, *exc_info):
        _local.deadline = self._previous
        return False
