"""Deterministic fault injection at the file-I/O boundary.

Every storage component (WAL, TsFile writer/reader, mods, catalog, obs
persistence) performs its file I/O through this module's thin wrappers —
:func:`fopen`, :func:`fsync`, :func:`replace` — instead of the builtins.
With no injector installed the wrappers are pass-throughs; with one
installed (:func:`install`), every operation is counted and matched
against scripted :class:`FaultRule`\\ s, which can then:

* raise a transient ``EIO`` (``action="eio"``),
* write only a prefix of the buffer (``"torn"``, optionally crashing),
* flip one bit of the data read or written (``"bitflip"``),
* return fewer bytes than asked (``"short_read"``),
* silently skip an fsync (``"fsync_noop"``),
* kill the process on the spot via ``os._exit`` (``"crash"``).

Rules fire at a scripted 1-based operation count (``at=``), with a
seeded probability, or on every match — which is what makes crash
torture reproducible: the same seed and script always die at the same
byte.  The module is intentionally free of any engine imports so every
layer of the storage stack can use it.

:func:`retry_io` is the read-side companion: it retries a callable over
transient ``OSError`` s (``EIO``/``EAGAIN``/``EINTR``) with capped
exponential backoff, so one glitched read does not fail a whole query.
"""

from __future__ import annotations

import errno
import os
import random
import threading
import time

#: errnos considered transient (worth retrying) by :func:`retry_io`.
TRANSIENT_ERRNOS = frozenset({errno.EIO, errno.EAGAIN, errno.EINTR})

#: exit code used by ``action="crash"`` so a parent can tell an injected
#: kill apart from any organic failure.
CRASH_EXIT_CODE = 173

#: operations the wrappers report.  ``"any"`` in a rule matches all.
#: ``"net"`` is reported by non-file code (the replication shipper
#: checkpoints each frame send), so network faults script the same way
#: file faults do: ``eio`` drops/severs the send, ``delay`` stalls it,
#: ``crash`` kills the process at an exact shipped-record count.
OPS = ("open", "read", "write", "flush", "fsync", "replace", "net")

_ACTIONS = ("eio", "torn", "bitflip", "short_read", "fsync_noop", "crash",
            "delay")


class FaultRule:
    """One scripted fault.

    ``op``
        which operation to target (one of :data:`OPS`, or ``"any"``).
    ``action``
        what to do when the rule fires (see module docstring).
    ``at``
        1-based index among this rule's *matching* operations at which
        to fire; ``None`` means every match (or roll ``probability``).
    ``path_substr``
        only operations on paths containing this substring match.
    ``times``
        maximum number of firings (``None`` = unlimited); transient
        errors are modeled with e.g. ``times=2`` + a retry loop.
    ``probability``
        seeded chance of firing per match, instead of a scripted ``at``.
    ``params``
        action tuning: ``keep`` (bytes kept by ``torn``/``short_read``),
        ``crash`` (bool: ``torn`` exits after the partial write),
        ``exit_code``, ``bit`` (absolute bit index for ``bitflip``).
    """

    def __init__(self, op, action, at=None, path_substr=None, times=1,
                 probability=None, **params):
        if op != "any" and op not in OPS:
            raise ValueError("unknown faultfs op %r" % (op,))
        if action not in _ACTIONS:
            raise ValueError("unknown faultfs action %r" % (action,))
        self.op = op
        self.action = action
        self.at = at
        self.path_substr = path_substr
        self.times = times
        self.probability = probability
        self.params = params
        self.seen = 0    # matching operations observed
        self.fired = 0   # times this rule actually fired

    def matches(self, op, path):
        """Does this rule target operation ``op`` on ``path``?"""
        if self.op != "any" and self.op != op:
            return False
        if self.path_substr is not None and self.path_substr not in path:
            return False
        return True

    def __repr__(self):
        return ("FaultRule(op=%r, action=%r, at=%r, path_substr=%r, "
                "times=%r, fired=%d)" % (self.op, self.action, self.at,
                                         self.path_substr, self.times,
                                         self.fired))


class FaultInjector:
    """Counts file operations and decides which ones fault.

    Thread-safe; one injector is installed process-wide via
    :func:`install`.  ``seed`` drives both probabilistic rules and the
    bit position chosen by ``bitflip``.
    """

    def __init__(self, rules=(), seed=0):
        self.rules = list(rules)
        self.random = random.Random(seed)
        self._lock = threading.RLock()
        self.total_ops = 0
        self.op_counts = {}
        self.fire_log = []   # (global_op_index, op, path, rule)

    def add_rule(self, rule):
        """Append one more scripted fault."""
        with self._lock:
            self.rules.append(rule)

    def decide(self, op, path):
        """Record one operation; return the rule that fires, if any."""
        path = os.fspath(path) if path is not None else ""
        with self._lock:
            self.total_ops += 1
            self.op_counts[op] = self.op_counts.get(op, 0) + 1
            for rule in self.rules:
                if not rule.matches(op, path):
                    continue
                rule.seen += 1
                if rule.times is not None and rule.fired >= rule.times:
                    continue
                if rule.at is not None:
                    if rule.seen != rule.at:
                        continue
                elif rule.probability is not None:
                    if self.random.random() >= rule.probability:
                        continue
                rule.fired += 1
                self.fire_log.append((self.total_ops, op, path, rule))
                return rule
            return None

    def flip_bit(self, data, rule):
        """Return ``data`` with one (seeded or scripted) bit flipped."""
        if not data:
            return data
        out = bytearray(data)
        bit = rule.params.get("bit")
        if bit is None:
            with self._lock:
                bit = self.random.randrange(len(out) * 8)
        byte_index, bit_index = divmod(int(bit) % (len(out) * 8), 8)
        out[byte_index] ^= 1 << bit_index
        return bytes(out)


# -- the process-wide installation point ---------------------------------------------

_installed = None
_install_lock = threading.Lock()


def install(injector):
    """Make ``injector`` the process-wide fault source; returns it."""
    global _installed
    with _install_lock:
        _installed = injector
    return injector


def uninstall():
    """Remove any installed injector (pass-through I/O again)."""
    global _installed
    with _install_lock:
        _installed = None


def current():
    """The installed :class:`FaultInjector`, or None."""
    return _installed


def _crash(rule):
    code = rule.params.get("exit_code", CRASH_EXIT_CODE)
    # os._exit skips atexit/flush: userspace buffers genuinely vanish,
    # exactly like a SIGKILL'd process.
    os._exit(code)


def _transient(op, path):
    return OSError(errno.EIO, "injected %s fault" % op, path)


def inject(op, path=""):
    """Checkpoint for non-file code paths (e.g. between rename steps).

    Counts one ``op`` against the installed injector and applies
    ``eio``/``crash``/``delay`` rules; data-shaping actions are ignored
    here.  ``delay`` sleeps ``params["seconds"]`` (default 50 ms) and
    then proceeds — the network-latency model for replication rules.
    """
    injector = _installed
    if injector is None:
        return
    rule = injector.decide(op, path)
    if rule is None:
        return
    if rule.action == "crash":
        _crash(rule)
    if rule.action == "eio":
        raise _transient(op, path)
    if rule.action == "delay":
        time.sleep(rule.params.get("seconds", 0.05))


class _FaultyFile:
    """A binary file handle whose every operation may fault."""

    def __init__(self, path, mode, injector):
        self._injector = injector
        self.name = os.fspath(path)
        rule = injector.decide("open", self.name)
        if rule is not None:
            if rule.action == "crash":
                _crash(rule)
            if rule.action == "eio":
                raise _transient("open", self.name)
        self._file = open(self.name, mode)

    # -- faulted operations ----------------------------------------------------------

    def write(self, data):
        rule = self._injector.decide("write", self.name)
        if rule is None:
            return self._file.write(data)
        if rule.action == "crash":
            _crash(rule)
        if rule.action == "eio":
            raise _transient("write", self.name)
        if rule.action == "bitflip":
            return self._file.write(self._injector.flip_bit(data, rule))
        if rule.action == "torn":
            keep = rule.params.get("keep", len(data) // 2)
            self._file.write(data[:keep])
            # A torn write is one the OS *did* see a prefix of: push it
            # out of the userspace buffer before dying/failing.
            self._file.flush()
            if rule.params.get("crash"):
                _crash(rule)
            raise _transient("write", self.name)
        return self._file.write(data)

    def read(self, size=-1):
        rule = self._injector.decide("read", self.name)
        if rule is None:
            return self._file.read(size)
        if rule.action == "crash":
            _crash(rule)
        if rule.action == "eio":
            raise _transient("read", self.name)
        data = self._file.read(size)
        if rule.action == "bitflip":
            return self._injector.flip_bit(data, rule)
        if rule.action == "short_read":
            keep = rule.params.get("keep", len(data) // 2)
            # A genuine short read: the position advances only by what
            # was returned, so the caller's next read resumes there.
            self._file.seek(keep - len(data), os.SEEK_CUR)
            return data[:keep]
        return data

    def flush(self):
        rule = self._injector.decide("flush", self.name)
        if rule is not None:
            if rule.action == "crash":
                _crash(rule)
            if rule.action == "eio":
                raise _transient("flush", self.name)
        return self._file.flush()

    # -- transparent pass-throughs ---------------------------------------------------

    def seek(self, offset, whence=os.SEEK_SET):
        return self._file.seek(offset, whence)

    def tell(self):
        return self._file.tell()

    def fileno(self):
        return self._file.fileno()

    def truncate(self, size=None):
        return self._file.truncate(size)

    def close(self):
        return self._file.close()

    @property
    def closed(self):
        return self._file.closed

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()


def fopen(path, mode="rb"):
    """Open a binary file through the fault layer.

    With no injector installed this is exactly ``open(path, mode)``.
    Only binary modes are supported: the injectors operate on bytes.
    """
    if "b" not in mode:
        raise ValueError("faultfs.fopen requires a binary mode, got %r"
                         % mode)
    injector = _installed
    if injector is None:
        return open(path, mode)
    return _FaultyFile(path, mode, injector)


def fsync(fileobj):
    """``os.fsync`` through the fault layer (``fsync_noop`` skips it)."""
    injector = _installed
    if injector is not None:
        rule = injector.decide("fsync", getattr(fileobj, "name", ""))
        if rule is not None:
            if rule.action == "crash":
                _crash(rule)
            if rule.action == "eio":
                raise _transient("fsync", getattr(fileobj, "name", ""))
            if rule.action == "fsync_noop":
                return
    os.fsync(fileobj.fileno())


def replace(src, dst):
    """``os.replace`` through the fault layer."""
    injector = _installed
    if injector is not None:
        rule = injector.decide("replace", os.fspath(dst))
        if rule is not None:
            if rule.action == "crash":
                _crash(rule)
            if rule.action == "eio":
                raise _transient("replace", os.fspath(dst))
    os.replace(src, dst)


def retry_io(fn, attempts=4, base_delay=0.005, max_delay=0.1,
             sleep=time.sleep, on_retry=None):
    """Call ``fn`` retrying transient ``OSError`` s with capped backoff.

    Retries only the errnos in :data:`TRANSIENT_ERRNOS`; anything else
    (including :class:`repro.errors.CorruptFileError`, which is not an
    ``OSError``) propagates immediately.  The last attempt's error is
    re-raised.  ``on_retry(attempt, exc)`` is called before each sleep —
    the engine hooks a metrics counter there.
    """
    if attempts < 1:
        raise ValueError("attempts must be >= 1")
    delay = base_delay
    for attempt in range(1, attempts + 1):
        try:
            return fn()
        except OSError as exc:
            if getattr(exc, "errno", None) not in TRANSIENT_ERRNOS:
                raise
            if attempt == attempts:
                raise
            if on_retry is not None:
                on_retry(attempt, exc)
            sleep(min(delay, max_delay))
            delay *= 2
