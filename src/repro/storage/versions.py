"""Global version numbers for chunks and deletes.

The version number kappa of Section 2.2.1 is a single global counter:
every flushed chunk and every delete receives the next value, so the
total order of versions is the append order of operations.
"""

from __future__ import annotations

import itertools
import threading


class VersionAllocator:
    """Hands out strictly increasing version numbers starting at 1.

    Allocation is atomic, so concurrent flushes and deletes always get
    distinct versions.

    >>> alloc = VersionAllocator()
    >>> alloc.next(), alloc.next()
    (1, 2)
    """

    def __init__(self, start=1):
        self._counter = itertools.count(start)
        self._last = start - 1
        self._lock = threading.Lock()

    def next(self):
        """Allocate and return the next version number."""
        with self._lock:
            self._last = next(self._counter)
            return self._last

    @property
    def last(self):
        """The most recently allocated version (``start - 1`` if none)."""
        return self._last


#: Sentinel version larger than any allocated one; the paper's
#: ``C-infinity`` / ``D-infinity`` and the version of virtual deletes.
VERSION_INFINITY = float("inf")
