"""Crash recovery: rebuild an engine's state from its data directory.

A storage directory is fully self-describing:

* ``catalog.meta``   — series names and ids,
* ``*.tsfile``       — chunks, sealed (footer) or salvageable (inline headers),
* ``deletes.mods``   — the versioned delete log,
* ``wal-*.log``      — points acknowledged but not yet flushed.

:func:`recover_engine_state` replays all four into a fresh
:class:`StorageEngine`, restoring the version counter, the per-series
chunk lists and delete lists, the TsFile sequence number, and the
memtable contents.

Failure policy mirrors the record stores: *tearing* — the crash-common
damage, always at a file's tail — is repaired and logged (torn WAL/mods/
catalog tails are truncated; an unsealed TsFile is salvaged chunk by
chunk from its inline headers; an empty or header-only file stub is
skipped).  *Corruption* — a checksum mismatch anywhere else — raises
:class:`CorruptFileError` so damage never turns into silently missing
or wrong data.
"""

from __future__ import annotations

import logging
import os
import re

from ..errors import CorruptFileError
from .tsfile import MAGIC, MAGIC_V1, TsFileReader

_TSFILE_RE = re.compile(r"^(\d{6})\.tsfile$")

log = logging.getLogger("repro.storage.recovery")


def list_tsfiles(data_dir):
    """TsFiles in the directory, in creation (sequence) order.

    Returns ``[(sequence_number, path), ...]``.
    """
    out = []
    for entry in os.listdir(data_dir):
        match = _TSFILE_RE.match(entry)
        if match:
            out.append((int(match.group(1)),
                        os.path.join(data_dir, entry)))
    out.sort()
    return out


def is_torn_stub(path):
    """Is this TsFile an empty/partial-magic stub from a dead writer?

    A process killed between creating the file and its first buffer
    flush leaves zero bytes (or a torn prefix of the magic).  Such a
    file provably holds no committed data, so recovery may skip it.
    """
    try:
        size = os.path.getsize(path)
    except OSError:
        return False
    if size >= len(MAGIC):
        return False
    with open(path, "rb") as f:
        head = f.read(len(MAGIC))
    return MAGIC.startswith(head) or MAGIC_V1.startswith(head)


def load_tsfile_metadata(reader):
    """All chunk metadata in a file: footer fast path, then salvage.

    Returns ``(metadata_list, salvaged)`` where ``salvaged`` is True
    when the footer was unusable (unsealed or damaged file) and the
    chunks were recovered from their inline headers instead.  v1 files
    have no inline headers, so their footer failures stay fatal.
    """
    try:
        return reader.read_metadata(), False
    except CorruptFileError:
        if reader.format_version < 2:
            raise
        return reader.salvage_metadata(), True


def recover_engine_state(engine):
    """Rebuild ``engine``'s in-memory state from its directory.

    Called by :class:`StorageEngine` when it opens a directory that
    already has any persisted state.  Returns a summary dict (series,
    chunks, deletes, replayed WAL points, salvaged files).
    """
    tracer = engine.tracer
    metrics = engine.metrics
    with tracer.span("recovery") as recovery_span:
        # 1. Series registry.
        with tracer.span("recovery.catalog") as span:
            n_series = 0
            for series_id, name in engine._catalog.read_all():
                engine._register_recovered_series(series_id, name)
                n_series += 1
            span.attrs["series"] = n_series

        # 2. Chunks from TsFiles (sealed footer or inline salvage).
        n_chunks = 0
        n_salvaged_files = 0
        max_version = 0
        max_seq = 0
        with tracer.span("recovery.tsfiles") as span:
            for seq, path in list_tsfiles(engine.data_dir):
                # Count stubs into the sequence too: the next writer
                # must not reuse (and truncate) an existing file name.
                max_seq = max(max_seq, seq)
                if is_torn_stub(path):
                    log.warning("%s: empty torn TsFile stub — skipped",
                                path)
                    metrics.counter(
                        "engine_torn_tsfile_stubs_total").inc()
                    continue
                with engine._open_reader(path) as reader:
                    metadata, salvaged = load_tsfile_metadata(reader)
                if salvaged:
                    n_salvaged_files += 1
                    log.warning(
                        "%s: no usable footer — salvaged %d chunk(s) "
                        "from inline headers", path, len(metadata))
                    metrics.counter("engine_salvaged_tsfiles_total").inc()
                    metrics.counter("engine_salvaged_chunks_total").inc(
                        len(metadata))
                for meta in metadata:
                    state = engine._series_by_id.get(meta.series_id)
                    if state is None:
                        raise CorruptFileError(
                            "%s: chunk for unknown series id %d"
                            % (path, meta.series_id), path=path)
                    state.chunks.append(meta)
                    state.points_written += meta.n_points
                    max_version = max(max_version, meta.version)
                    n_chunks += 1
            for state in engine._series_by_id.values():
                state.chunks.sort(key=lambda m: m.version)
            span.attrs["chunks"] = n_chunks
            span.attrs["salvaged_files"] = n_salvaged_files

        # 3. Deletes from the mods log.
        n_deletes = 0
        with tracer.span("recovery.mods") as span:
            for series_id, delete in engine._mods.read_all():
                state = engine._series_by_id.get(series_id)
                if state is None:
                    raise CorruptFileError(
                        "mods log references unknown series id %d"
                        % series_id, path=engine._mods.path)
                state.deletes.add(delete)
                max_version = max(max_version, int(delete.version))
                n_deletes += 1
            span.attrs["deletes"] = n_deletes

        # 4. Unflushed points from the WAL.
        n_replayed = 0
        if engine._wal is not None:
            with tracer.span("recovery.wal") as span:
                for series_id, t, v in engine._wal.replay_all():
                    state = engine._series_by_id.get(series_id)
                    if state is None:
                        raise CorruptFileError(
                            "WAL references unknown series id %d"
                            % series_id)
                    state.memtable.append(t, v)
                    state.points_written += 1
                    n_replayed += 1
                span.attrs["wal_points"] = n_replayed

        engine._restore_counters(max_version, max_seq)
        summary = {
            "series": len(engine._series_by_id),
            "chunks": n_chunks,
            "deletes": n_deletes,
            "wal_points": n_replayed,
            "salvaged_files": n_salvaged_files,
        }
        recovery_span.attrs.update(summary)
    metrics.counter("engine_recoveries_total").inc()
    metrics.counter("engine_recovered_wal_points_total").inc(n_replayed)
    metrics.gauge("engine_series").set(summary["series"])
    return summary
