"""Crash recovery: rebuild an engine's state from its data directory.

A storage directory is fully self-describing:

* ``catalog.meta``   — series names and ids,
* ``*.tsfile``       — sealed chunks with tail metadata sections,
* ``deletes.mods``   — the versioned delete log,
* ``wal.log``        — points acknowledged but not yet flushed.

:func:`recover_engine_state` replays all four into a fresh
:class:`StorageEngine`, restoring the version counter, the per-series
chunk lists and delete lists, the TsFile sequence number, and the
memtable contents.  Any complete prefix of a torn WAL is preserved.
"""

from __future__ import annotations

import os
import re

from ..errors import CorruptFileError
from .tsfile import TsFileReader

_TSFILE_RE = re.compile(r"^(\d{6})\.tsfile$")


def list_tsfiles(data_dir):
    """Sealed TsFiles in the directory, in creation (sequence) order.

    Returns ``[(sequence_number, path), ...]``.
    """
    out = []
    for entry in os.listdir(data_dir):
        match = _TSFILE_RE.match(entry)
        if match:
            out.append((int(match.group(1)),
                        os.path.join(data_dir, entry)))
    out.sort()
    return out


def recover_engine_state(engine):
    """Rebuild ``engine``'s in-memory state from its directory.

    Called by :class:`StorageEngine` when it opens a directory that
    already has a catalog.  Returns a summary dict (series, chunks,
    deletes, replayed WAL points).
    """
    tracer = engine.tracer
    with tracer.span("recovery") as recovery_span:
        # 1. Series registry.
        with tracer.span("recovery.catalog") as span:
            n_series = 0
            for series_id, name in engine._catalog.read_all():
                engine._register_recovered_series(series_id, name)
                n_series += 1
            span.attrs["series"] = n_series

        # 2. Chunks from sealed TsFiles.
        n_chunks = 0
        max_version = 0
        max_seq = 0
        with tracer.span("recovery.tsfiles") as span:
            for seq, path in list_tsfiles(engine.data_dir):
                max_seq = max(max_seq, seq)
                with TsFileReader(path) as reader:
                    for meta in reader.read_metadata():
                        state = engine._series_by_id.get(meta.series_id)
                        if state is None:
                            raise CorruptFileError(
                                "%s: chunk for unknown series id %d"
                                % (path, meta.series_id))
                        state.chunks.append(meta)
                        state.points_written += meta.n_points
                        max_version = max(max_version, meta.version)
                        n_chunks += 1
            for state in engine._series_by_id.values():
                state.chunks.sort(key=lambda m: m.version)
            span.attrs["chunks"] = n_chunks

        # 3. Deletes from the mods log.
        n_deletes = 0
        with tracer.span("recovery.mods") as span:
            for series_id, delete in engine._mods.read_all():
                state = engine._series_by_id.get(series_id)
                if state is None:
                    raise CorruptFileError(
                        "mods log references unknown series id %d"
                        % series_id)
                state.deletes.add(delete)
                max_version = max(max_version, int(delete.version))
                n_deletes += 1
            span.attrs["deletes"] = n_deletes

        # 4. Unflushed points from the WAL.
        n_replayed = 0
        if engine._wal is not None:
            with tracer.span("recovery.wal") as span:
                for series_id, t, v in engine._wal.replay_all():
                    state = engine._series_by_id.get(series_id)
                    if state is None:
                        raise CorruptFileError(
                            "WAL references unknown series id %d"
                            % series_id)
                    state.memtable.append(t, v)
                    state.points_written += 1
                    n_replayed += 1
                span.attrs["wal_points"] = n_replayed

        engine._restore_counters(max_version, max_seq)
        summary = {
            "series": len(engine._series_by_id),
            "chunks": n_chunks,
            "deletes": n_deletes,
            "wal_points": n_replayed,
        }
        recovery_span.attrs.update(summary)
    metrics = engine.metrics
    metrics.counter("engine_recoveries_total").inc()
    metrics.counter("engine_recovered_wal_points_total").inc(n_replayed)
    metrics.gauge("engine_series").set(summary["series"])
    return summary
