"""Pages: the unit of encoding and of partial chunk reads.

A chunk's points are split into fixed-size pages; each page stores its
time column and value column as two independently encoded payloads.  The
per-page directory (statistics + payload offsets) lives in the chunk's
metadata, so a reader can decode exactly the pages a query touches —
the mechanism behind the "partial scan" of Example 3.4.
"""

from __future__ import annotations

import dataclasses
import struct

from ..errors import StorageError
from .statistics import Statistics

_OFFSETS = struct.Struct("<QIQI")  # time_offset, time_len, value_offset, value_len


@dataclasses.dataclass(frozen=True)
class PageMetadata:
    """Directory entry of one page inside a chunk.

    Offsets are relative to the start of the chunk's data block.
    ``first_row`` is the page's first point's 0-based row within the chunk.
    """

    statistics: Statistics
    first_row: int
    time_offset: int
    time_length: int
    value_offset: int
    value_length: int

    @property
    def n_points(self):
        """Number of points in this page."""
        return self.statistics.count

    SERIALIZED_SIZE = Statistics.SERIALIZED_SIZE + 8 + _OFFSETS.size

    def to_bytes(self):
        """Fixed-width binary form, stored inside chunk metadata."""
        return (self.statistics.to_bytes()
                + struct.pack("<q", self.first_row)
                + _OFFSETS.pack(self.time_offset, self.time_length,
                                self.value_offset, self.value_length))

    @classmethod
    def from_bytes(cls, data, offset=0):
        """Inverse of :meth:`to_bytes`; returns ``(page_meta, next_offset)``."""
        stats = Statistics.from_bytes(data, offset)
        offset += Statistics.SERIALIZED_SIZE
        if len(data) - offset < 8 + _OFFSETS.size:
            raise StorageError("truncated page metadata")
        (first_row,) = struct.unpack_from("<q", data, offset)
        offset += 8
        t_off, t_len, v_off, v_len = _OFFSETS.unpack_from(data, offset)
        offset += _OFFSETS.size
        return cls(stats, first_row, t_off, t_len, v_off, v_len), offset


def split_rows(n_points, points_per_page):
    """Yield ``(start_row, end_row)`` page boundaries for a chunk.

    >>> list(split_rows(5, 2))
    [(0, 2), (2, 4), (4, 5)]
    """
    if points_per_page <= 0:
        raise StorageError("points_per_page must be positive")
    for start in range(0, n_points, points_per_page):
        yield start, min(start + points_per_page, n_points)
