"""Pages: the unit of encoding and of partial chunk reads.

A chunk's points are split into fixed-size pages; each page stores its
time column and value column as two independently encoded payloads.  The
per-page directory (statistics + payload offsets) lives in the chunk's
metadata, so a reader can decode exactly the pages a query touches —
the mechanism behind the "partial scan" of Example 3.4.

Format v2 adds a CRC32 per payload to the directory entry, so a reader
detects a silently flipped bit in a data block before the decoder turns
it into wrong values.  A CRC of 0 means "not recorded" (v1 files): the
reader skips verification for those pages.
"""

from __future__ import annotations

import dataclasses
import struct

from ..errors import StorageError
from .statistics import Statistics

_OFFSETS = struct.Struct("<QIQI")  # time_offset, time_len, value_offset, value_len
_CRCS = struct.Struct("<II")       # time_crc, value_crc (v2 only)

FORMAT_V1 = 1
FORMAT_V2 = 2


@dataclasses.dataclass(frozen=True)
class PageMetadata:
    """Directory entry of one page inside a chunk.

    Offsets are relative to the start of the chunk's data block.
    ``first_row`` is the page's first point's 0-based row within the chunk.
    ``time_crc``/``value_crc`` are CRC32s of the encoded payloads; 0
    means the file predates checksums (format v1).
    """

    statistics: Statistics
    first_row: int
    time_offset: int
    time_length: int
    value_offset: int
    value_length: int
    time_crc: int = 0
    value_crc: int = 0

    @property
    def n_points(self):
        """Number of points in this page."""
        return self.statistics.count

    SERIALIZED_SIZE_V1 = Statistics.SERIALIZED_SIZE + 8 + _OFFSETS.size
    SERIALIZED_SIZE = SERIALIZED_SIZE_V1 + _CRCS.size

    def to_bytes(self, format_version=FORMAT_V2):
        """Fixed-width binary form, stored inside chunk metadata."""
        out = (self.statistics.to_bytes()
               + struct.pack("<q", self.first_row)
               + _OFFSETS.pack(self.time_offset, self.time_length,
                               self.value_offset, self.value_length))
        if format_version >= FORMAT_V2:
            out += _CRCS.pack(self.time_crc, self.value_crc)
        return out

    @classmethod
    def from_bytes(cls, data, offset=0, format_version=FORMAT_V2):
        """Inverse of :meth:`to_bytes`; returns ``(page_meta, next_offset)``."""
        stats = Statistics.from_bytes(data, offset)
        offset += Statistics.SERIALIZED_SIZE
        tail = 8 + _OFFSETS.size
        if format_version >= FORMAT_V2:
            tail += _CRCS.size
        if len(data) - offset < tail:
            raise StorageError("truncated page metadata")
        (first_row,) = struct.unpack_from("<q", data, offset)
        offset += 8
        t_off, t_len, v_off, v_len = _OFFSETS.unpack_from(data, offset)
        offset += _OFFSETS.size
        t_crc = v_crc = 0
        if format_version >= FORMAT_V2:
            t_crc, v_crc = _CRCS.unpack_from(data, offset)
            offset += _CRCS.size
        return cls(stats, first_row, t_off, t_len, v_off, v_len,
                   t_crc, v_crc), offset


def split_rows(n_points, points_per_page):
    """Yield ``(start_row, end_row)`` page boundaries for a chunk.

    >>> list(split_rows(5, 2))
    [(0, 2), (2, 4), (4, 5)]
    """
    if points_per_page <= 0:
        raise StorageError("points_per_page must be positive")
    for start in range(0, n_points, points_per_page):
        yield start, min(start + points_per_page, n_points)
