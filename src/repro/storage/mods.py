"""Mods files: the append-only on-disk delete log (TsFile.mods in IoTDB).

Delete operations never rewrite sealed TsFiles; they are appended here and
applied at read time (and, if compaction is enabled, folded in then).

Record layout (little endian, format v2)::

    u32 series_id, i64 t_start, i64 t_end, u64 version, u32 crc32(payload)

Torn-tail policy matches the WAL: a short final record (crash
mid-append) is truncated with a warning and prior records survive; a
full-size record with a bad CRC raises :class:`CorruptFileError` —
silently dropping a delete would resurrect data, which is worse than
failing loudly.  v1 (seed) files have no checksums and read as before.
"""

from __future__ import annotations

import logging
import os
import struct
import zlib

from ..errors import CorruptFileError
from . import faultfs
from .deletes import Delete

MAGIC = b"MODSv2\n\0"
MAGIC_V1 = b"MODSv1\n\0"
_PAYLOAD = struct.Struct("<IqqQ")  # series_id, t_start, t_end, version
_CRC = struct.Struct("<I")
RECORD_SIZE = _PAYLOAD.size + _CRC.size

log = logging.getLogger("repro.storage.mods")


class ModsFile:
    """Append-only log of :class:`Delete` records, one per series delete."""

    def __init__(self, path):
        self._path = os.fspath(path)
        if not os.path.exists(self._path):
            with faultfs.fopen(self._path, "wb") as f:
                f.write(MAGIC)

    @property
    def path(self):
        """Location of the log file."""
        return self._path

    def append(self, series_id, delete):
        """Persist one delete record (flushed before returning)."""
        payload = _PAYLOAD.pack(series_id, delete.t_start, delete.t_end,
                                int(delete.version))
        with faultfs.fopen(self._path, "ab") as f:
            f.write(payload + _CRC.pack(zlib.crc32(payload)))
            f.flush()

    def read_all(self, repair=True, report=None):
        """Yield every ``(series_id, Delete)`` record in append order.

        A short final record is a torn tail: warn, truncate (when
        ``repair``), keep the prior records.  A full-size record with a
        CRC mismatch raises :class:`CorruptFileError`.
        """
        size = os.path.getsize(self._path)
        with faultfs.fopen(self._path, "rb") as f:
            head = f.read(len(MAGIC))
            if head == MAGIC:
                record_size, checked = RECORD_SIZE, True
            elif head == MAGIC_V1:
                record_size, checked = _PAYLOAD.size, False
            elif MAGIC.startswith(head) or MAGIC_V1.startswith(head):
                self._torn(len(head), 0, repair, report,
                           "torn mods header")
                return
            else:
                raise CorruptFileError("%s: bad mods magic" % self._path,
                                       path=self._path)
            offset = len(head)
            while True:
                raw = f.read(record_size)
                if not raw:
                    return
                if len(raw) < record_size:
                    self._torn(offset, size - offset, repair, report,
                               "torn mods record")
                    return
                if checked:
                    payload, (crc,) = raw[:_PAYLOAD.size], _CRC.unpack(
                        raw[_PAYLOAD.size:])
                    if zlib.crc32(payload) != crc:
                        raise CorruptFileError(
                            "%s: mods record CRC mismatch at offset %d"
                            % (self._path, offset), path=self._path)
                else:
                    payload = raw
                series_id, t_start, t_end, version = _PAYLOAD.unpack(
                    payload)
                offset += record_size
                yield series_id, Delete(t_start, t_end, version)

    def _torn(self, keep_bytes, torn_bytes, repair, report, what):
        log.warning("%s: %s (%d bytes) — keeping prior records",
                    self._path, what, torn_bytes)
        if report is not None:
            report({"file": self._path, "severity": "warning",
                    "issue": what, "torn_bytes": torn_bytes})
        if repair:
            if keep_bytes < len(MAGIC):
                with faultfs.fopen(self._path, "wb") as f:
                    f.write(MAGIC)
            else:
                os.truncate(self._path, keep_bytes)
