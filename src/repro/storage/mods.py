"""Mods files: the append-only on-disk delete log (TsFile.mods in IoTDB).

Delete operations never rewrite sealed TsFiles; they are appended here and
applied at read time (and, if compaction is enabled, folded in then).
"""

from __future__ import annotations

import os
import struct

from ..errors import CorruptFileError
from .deletes import Delete

MAGIC = b"MODSv1\n\0"
_RECORD = struct.Struct("<IqqQ")  # series_id, t_start, t_end, version


class ModsFile:
    """Append-only log of :class:`Delete` records, one per series delete."""

    def __init__(self, path):
        self._path = os.fspath(path)
        if not os.path.exists(self._path):
            with open(self._path, "wb") as f:
                f.write(MAGIC)

    @property
    def path(self):
        """Location of the log file."""
        return self._path

    def append(self, series_id, delete):
        """Persist one delete record."""
        with open(self._path, "ab") as f:
            f.write(_RECORD.pack(series_id, delete.t_start, delete.t_end,
                                 int(delete.version)))

    def read_all(self):
        """Yield every ``(series_id, Delete)`` record in append order."""
        with open(self._path, "rb") as f:
            head = f.read(len(MAGIC))
            if head != MAGIC:
                raise CorruptFileError("%s: bad mods magic" % self._path)
            while True:
                raw = f.read(_RECORD.size)
                if not raw:
                    return
                if len(raw) != _RECORD.size:
                    raise CorruptFileError(
                        "%s: truncated mods record" % self._path)
                series_id, t_start, t_end, version = _RECORD.unpack(raw)
                yield series_id, Delete(t_start, t_end, version)
