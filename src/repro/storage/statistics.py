"""Chunk/page statistics: the metadata of Definition 2.4.

Every flushed chunk (and every page inside it) carries
``{FP, LP, BP, TP}`` plus the point count.  The M4-LSM operator consumes
exactly this structure as its candidate source, so it is the pivot of the
whole reproduction.
"""

from __future__ import annotations

import dataclasses
import struct

import numpy as np

from ..core.series import Point
from ..errors import StorageError

_PACK = struct.Struct("<qqdqdqdqdd")  # count, (t, v) x 4, value sum


@dataclasses.dataclass(frozen=True)
class Statistics:
    """FP/LP/BP/TP representation points plus the point count.

    ``first``/``last`` are the points with minimal/maximal time;
    ``bottom``/``top`` are points with minimal/maximal value (the earliest
    one when tied, matching Definition 2.1's "any one" latitude).
    """

    count: int
    first: Point
    last: Point
    bottom: Point
    top: Point
    value_sum: float = 0.0

    @classmethod
    def from_arrays(cls, timestamps, values):
        """Compute statistics from time-ordered arrays, vectorized."""
        t = np.asarray(timestamps)
        v = np.asarray(values)
        if t.size == 0:
            raise StorageError("statistics of an empty chunk are undefined")
        bottom_pos = int(np.argmin(v))
        top_pos = int(np.argmax(v))
        # inf/-inf values make the sum NaN; that is the correct answer
        # for AVG over them, so silence numpy's warning.
        with np.errstate(invalid="ignore", over="ignore"):
            value_sum = float(v.sum())
        return cls(
            count=int(t.size),
            first=Point(int(t[0]), float(v[0])),
            last=Point(int(t[-1]), float(v[-1])),
            bottom=Point(int(t[bottom_pos]), float(v[bottom_pos])),
            top=Point(int(t[top_pos]), float(v[top_pos])),
            value_sum=value_sum,
        )

    @classmethod
    def from_series(cls, series):
        """Compute statistics from a :class:`TimeSeries`."""
        return cls.from_arrays(series.timestamps, series.values)

    @property
    def mean(self):
        """Average value of the chunk's points."""
        return self.value_sum / self.count

    # -- time interval ----------------------------------------------------------

    @property
    def start_time(self):
        """First timestamp covered by the chunk."""
        return self.first.t

    @property
    def end_time(self):
        """Last timestamp covered by the chunk."""
        return self.last.t

    def covers_time(self, t):
        """True if ``t`` lies in the chunk's closed time interval.

        Note this is the interval test of Section 3.4: a covered time does
        *not* imply a point exists at ``t``.
        """
        return self.start_time <= t <= self.end_time

    def overlaps(self, t_start, t_end):
        """True if the chunk's interval intersects ``[t_start, t_end)``."""
        return self.start_time < t_end and self.end_time >= t_start

    def inside(self, t_start, t_end):
        """True if the chunk's interval is contained in ``[t_start, t_end)``."""
        return t_start <= self.start_time and self.end_time < t_end

    # -- merge ------------------------------------------------------------------

    def merge(self, other):
        """Statistics of the union of two disjoint point sets.

        Used by the TsFile writer to roll page statistics up into chunk
        statistics.  Bottom/top tie-break on earliest time for determinism.
        """
        first = self.first if self.first.t <= other.first.t else other.first
        last = self.last if self.last.t >= other.last.t else other.last
        bottom = _pick(self.bottom, other.bottom, prefer_low_value=True)
        top = _pick(self.top, other.top, prefer_low_value=False)
        return Statistics(self.count + other.count, first, last, bottom,
                          top, self.value_sum + other.value_sum)

    # -- serialization ----------------------------------------------------------

    SERIALIZED_SIZE = _PACK.size

    def to_bytes(self):
        """Fixed-width binary form used inside TsFile metadata sections."""
        return _PACK.pack(
            self.count,
            self.first.t, self.first.v,
            self.last.t, self.last.v,
            self.bottom.t, self.bottom.v,
            self.top.t, self.top.v,
            self.value_sum,
        )

    @classmethod
    def from_bytes(cls, data, offset=0):
        """Inverse of :meth:`to_bytes`."""
        if len(data) - offset < _PACK.size:
            raise StorageError("truncated statistics block")
        (count, ft, fv, lt, lv, bt, bv, tt, tv,
         value_sum) = _PACK.unpack_from(data, offset)
        return cls(count, Point(ft, fv), Point(lt, lv), Point(bt, bv),
                   Point(tt, tv), value_sum)


def _pick(a, b, prefer_low_value):
    """Pick the extreme of two points by value, earliest time on ties."""
    if a.v == b.v:
        return a if a.t <= b.t else b
    if prefer_low_value:
        return a if a.v < b.v else b
    return a if a.v > b.v else b
