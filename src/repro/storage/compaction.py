"""Full compaction: fold chunks and deletes of a series into fresh chunks.

The paper's experiments run with compaction disabled (Table 4,
``NO_COMPACTION``) so that overlapping chunks and pending deletes persist
— that is precisely the regime M4-LSM targets.  Compaction is still part
of any real LSM engine, so it is implemented here: it merges a series'
chunks under its deletes and rewrites the result as non-overlapping
chunks with a fresh version, after which reads need no merging at all.
"""

from __future__ import annotations

from .deletes import DeleteList
from .merge import merge_arrays


def compact_series(engine, name):
    """Compact one series in place.

    Reads every sealed chunk, applies all deletes, merges, and rewrites
    the surviving points as brand-new chunks.  The series' delete list is
    emptied (the deletes are now folded into the data).

    Returns the number of surviving points.
    """
    state = engine._state(name)
    # The whole rewrite holds the series write lock: queries either see
    # the old chunks + deletes or the compacted chunks, never a mix.
    with state.lock.write():
        with engine.tracer.span("compaction", series=name,
                                chunks=len(state.chunks)) as span:
            if state.memtable:
                engine._flush_locked(state)
                engine._seal_active_file()
            reader = engine.data_reader()
            chunks = [(*reader.load_chunk(meta), meta.version)
                      for meta in state.chunks]
            t, v = merge_arrays(chunks, state.deletes)
            state.chunks = []
            state.deletes = DeleteList()
            if t.size:
                threshold = engine.config.avg_series_point_number_threshold
                for start in range(0, t.size, threshold):
                    engine._seal_chunk(state, t[start:start + threshold],
                                       v[start:start + threshold])
                engine._seal_active_file()
            span.attrs["survivors"] = int(t.size)
            # Rewritten chunks answer M4 with the same values but may
            # pick different BP/TP tie-break points, so cached tiles of
            # the pre-compaction layout must go.
            engine._invalidate_series_tiles(name)
            engine.metrics.counter("engine_compactions_total").inc()
            engine.metrics.counter("engine_compacted_points_total") \
                .inc(int(t.size))
    return int(t.size)


def compact_all(engine):
    """Compact every series; returns ``{name: surviving point count}``."""
    return {name: compact_series(engine, name)
            for name in engine.series_names()}
