"""repro — a from-scratch reproduction of "Time Series Representation for
Visualization in Apache IoTDB" (SIGMOD 2024).

The package implements the paper's chunk-merge-free **M4-LSM** operator
together with every substrate it rests on: an LSM/TsFile storage engine,
the **M4-UDF** baseline, the step-regression chunk index, a pixel-exact
line-chart rasterizer, synthetic equivalents of the paper's datasets and
a benchmark harness regenerating each of its figures.

Quickstart::

    from repro import Session
    session = Session("/tmp/demo-db")
    session.create_series("root.demo.speed")
    session.insert_batch("root.demo.speed", timestamps, values)
    result = session.query_m4("root.demo.speed", t_qs, t_qe, w=1000)
    reduced = result.to_series()   # <= 4000 points, pixel-exact
"""

from .core import (
    M4LSMOperator,
    M4Result,
    M4UDFOperator,
    Point,
    SpanAggregate,
    TimeSeries,
    m4_aggregate_arrays,
    m4_aggregate_series,
)
from .errors import (
    EncodingError,
    InvalidQueryRangeError,
    QueryError,
    ReproError,
    SqlSyntaxError,
    StorageError,
)
from .query import Session
from .storage import Delete, DeleteList, IoStats, StorageConfig, StorageEngine

__version__ = "1.0.0"

__all__ = [
    "Delete",
    "DeleteList",
    "EncodingError",
    "InvalidQueryRangeError",
    "IoStats",
    "M4LSMOperator",
    "M4Result",
    "M4UDFOperator",
    "Point",
    "QueryError",
    "ReproError",
    "Session",
    "SpanAggregate",
    "SqlSyntaxError",
    "StorageConfig",
    "StorageEngine",
    "StorageError",
    "TimeSeries",
    "m4_aggregate_arrays",
    "m4_aggregate_series",
    "__version__",
]
