"""Jittered exponential backoff, shared by every retry loop.

One implementation of the "retry with backoff" idiom so the client,
the load generator, the smoke scripts and the replication shipper all
back off the same way: exponential growth from ``base`` to ``cap``
with full jitter (each delay is drawn uniformly from the upper half of
the current window, so synchronized clients de-correlate), honoring a
server-supplied ``Retry-After`` hint as a floor when one is given.

The class is deliberately a leaf: stdlib only, no imports from the
rest of the package, so any layer (client, server, scripts) can use it
without creating an import cycle.
"""

from __future__ import annotations

import random
import time


class Backoff:
    """Exponential backoff with full jitter and a hard cap.

    >>> b = Backoff(base=0.05, cap=5.0, rng=random.Random(0))
    >>> 0.025 <= b.delay() <= 0.05
    True

    Args:
        base: first delay window in seconds.
        cap: upper bound on any computed delay (a larger server
            ``Retry-After`` hint still wins — the server knows best).
        factor: window growth per attempt.
        rng: a ``random.Random`` (seedable for tests); defaults to the
            module RNG.
        sleep: the sleep function (injectable for tests).
    """

    def __init__(self, base=0.05, cap=5.0, factor=2.0, rng=None,
                 sleep=time.sleep):
        if base <= 0 or cap < base or factor < 1:
            raise ValueError("invalid backoff parameters")
        self.base = float(base)
        self.cap = float(cap)
        self.factor = float(factor)
        self._rng = rng if rng is not None else random
        self._sleep = sleep
        self.attempts = 0

    def delay(self, retry_after=None):
        """The next delay in seconds (advances the attempt counter).

        Jitter draws from ``[window/2, window]`` so the delay never
        collapses to zero; ``retry_after`` (the HTTP hint) acts as a
        floor — the computed delay never undercuts what the server
        asked for.
        """
        window = min(self.cap, self.base * self.factor ** self.attempts)
        self.attempts += 1
        delay = window * (0.5 + 0.5 * self._rng.random())
        if retry_after is not None and retry_after > 0:
            delay = max(delay, float(retry_after))
        return delay

    def wait(self, retry_after=None):
        """Sleep for :meth:`delay` seconds; returns the delay slept."""
        delay = self.delay(retry_after)
        self._sleep(delay)
        return delay

    def reset(self):
        """Back to the first window (call after a success)."""
        self.attempts = 0
