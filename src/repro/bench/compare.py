"""The regression gate: diff a matrix artifact against a baseline.

``repro bench --check`` loads two schema-validated matrix artifacts and
fails (exit 1) when any gated cell regressed:

* **wall-clock p50** — more than ``threshold`` (default 20%) over the
  baseline, with two guards: the allowance widens to the noise floor
  measured from each cell's repeated samples
  (:func:`~repro.bench.driver.noise_allowance`), and an absolute slack
  keeps sub-millisecond cells from gating on scheduler jitter.
  Wall-clock is only *strictly* gated when both artifacts carry the
  same machine fingerprint — a laptop run cannot fail CI's baseline
  and vice versa; across machines the wall gate degrades to a warning
  and the I/O counters carry the verdict;
* **I/O counters** — chunk loads, pages/points decoded, bytes read,
  index lookups.  These are deterministic per (code, config, scale),
  machine-independent, and therefore gated everywhere;
* **identity** — a cell whose checked identity flag is false fails
  unconditionally (a fast wrong answer is not a win);
* **coverage** — a gated baseline cell missing from the current
  artifact fails (a gate you stopped running is a gate you removed).
"""

from __future__ import annotations

import dataclasses

from .driver import noise_allowance
from .schema import SchemaError

#: Absolute wall-clock slack added on top of the relative allowance.
ABS_WALL_SLACK_SECONDS = 2e-3

#: The machine-independent counters the gate always enforces.
GATED_IO_COUNTERS = ("chunk_loads", "pages_decoded", "points_decoded",
                     "bytes_read", "index_lookups")

#: Relative tolerance on counters (they are deterministic; this only
#: absorbs harmless accounting drift, e.g. one extra metadata probe).
IO_TOLERANCE = 0.02


@dataclasses.dataclass
class Finding:
    """One gate observation: a failure, a warning or an info line."""

    cell: str
    level: str          # "fail" | "warn" | "info"
    message: str

    def render(self):
        return "[%s] %s: %s" % (self.level.upper(), self.cell,
                                self.message)


@dataclasses.dataclass
class GateReport:
    """The comparator's verdict over every examined cell."""

    findings: list
    cells_checked: int
    wall_gated: bool

    @property
    def ok(self):
        return not any(f.level == "fail" for f in self.findings)

    def render(self):
        lines = [f.render() for f in self.findings]
        fails = sum(1 for f in self.findings if f.level == "fail")
        warns = sum(1 for f in self.findings if f.level == "warn")
        lines.append(
            "bench gate: %d cell(s) checked, %d failure(s), %d "
            "warning(s)%s" % (self.cells_checked, fails, warns,
                              "" if self.wall_gated else
                              " [wall-clock advisory: different "
                              "machines]"))
        lines.append("bench gate: %s" % ("PASS" if self.ok else "FAIL"))
        return "\n".join(lines)


def _check_wall(cell_id, base, cur, threshold, strict, findings):
    base_p50 = base["wall"]["p50_seconds"]
    cur_p50 = cur["wall"]["p50_seconds"]
    allowance = noise_allowance(base["wall"]["samples"],
                                cur["wall"]["samples"], threshold)
    limit = base_p50 * (1.0 + allowance) + ABS_WALL_SLACK_SECONDS
    if cur_p50 <= limit:
        return
    level = "fail" if strict else "warn"
    findings.append(Finding(cell_id, level,
                            "p50 %.4fs vs baseline %.4fs (+%.0f%%, "
                            "allowed +%.0f%%)"
                            % (cur_p50, base_p50,
                               100.0 * (cur_p50 / max(base_p50, 1e-12)
                                        - 1.0),
                               100.0 * allowance)))


def _check_io(cell_id, base, cur, findings):
    for counter in GATED_IO_COUNTERS:
        base_n = int(base["io"].get(counter, 0))
        cur_n = int(cur["io"].get(counter, 0))
        if cur_n > base_n * (1.0 + IO_TOLERANCE) + 2:
            findings.append(Finding(
                cell_id, "fail",
                "%s %d vs baseline %d (deterministic counter regressed)"
                % (counter, cur_n, base_n)))


def compare_artifacts(current, baseline, threshold=0.20, gated_only=True,
                      wall_mode="auto"):
    """Gate ``current`` against ``baseline`` (both matrix docs).

    ``wall_mode``: ``"auto"`` gates wall-clock strictly only when both
    artifacts share a machine fingerprint, ``"strict"`` always,
    ``"off"`` never (counters and identity still gate).
    Raises :class:`~repro.bench.schema.SchemaError` when the artifacts
    are not comparable at all (different point scales).
    """
    base_meta, cur_meta = baseline["meta"], current["meta"]
    if base_meta["points"] != cur_meta["points"]:
        raise SchemaError(
            "artifacts are not comparable: baseline ran %d points, "
            "current ran %d (set REPRO_BENCH_POINTS / --points to the "
            "baseline's scale)" % (base_meta["points"],
                                   cur_meta["points"]))
    if wall_mode == "auto":
        strict_wall = (base_meta["machine_id"] == cur_meta["machine_id"]
                       and base_meta["machine_id"] != "unknown")
    else:
        strict_wall = wall_mode == "strict"
    cur_rows = {row["id"]: row for row in current["rows"]}
    findings, checked = [], 0
    for base_row in baseline["rows"]:
        if gated_only and not base_row["gate"]:
            continue
        cell_id = base_row["id"]
        cur_row = cur_rows.get(cell_id)
        if cur_row is None:
            findings.append(Finding(cell_id, "fail",
                                    "gated cell missing from current "
                                    "artifact"))
            continue
        checked += 1
        if (cur_row["identity"]["checked"]
                and not cur_row["identity"]["equal"]):
            findings.append(Finding(cell_id, "fail",
                                    "identity check failed (operator "
                                    "answer differs from reference)"))
        if wall_mode != "off":
            _check_wall(cell_id, base_row, cur_row, threshold,
                        strict_wall, findings)
        _check_io(cell_id, base_row, cur_row, findings)
    for cell_id in cur_rows:
        if not any(row["id"] == cell_id for row in baseline["rows"]):
            findings.append(Finding(cell_id, "info",
                                    "new cell (not in baseline)"))
    return GateReport(findings=findings, cells_checked=checked,
                      wall_gated=strict_wall and wall_mode != "off")
