"""E19 — shard-count scaling: the shards = 1/2/4/8 sweep.

Two phases, one artifact (``benchmarks/BENCH_shards.json``, kind
``shards``):

**Identity.**  For every Table 2 dataset, the same points are loaded
into a pre-shard reference engine (:class:`StorageEngine` directly,
the exact code path every earlier experiment used) and into stores
opened through :func:`repro.shard.open_store` at each swept shard
count.  Query rows (``SELECT M4(v) ... SPANS(256)``) and the rendered
PBM bytes must match the reference *byte for byte* — at ``shards=1``
because the fast path literally is the old engine, at ``shards>1``
because a series lives wholly on one shard, so its result crosses the
pipe whole.  ``identical`` in each row is the AND over all datasets.

**Throughput.**  A multi-series store (series hash across shards) is
built per shard count and served by a real :mod:`repro.server`; the
E13 closed-loop session workload measures aggregate query throughput.
``speedup_vs_1`` is the ratio against the ``shards=1`` cell.  The
CI gate asserts shards=4 ≥ 2x shards=1 — *only* on machines with
``os.cpu_count() >= 4``, because shard-per-core scaling cannot
physically appear on fewer cores; the identity half gates everywhere
(see benchmarks/test_shard_scaling.py and EXPERIMENTS.md §E19).
"""

from __future__ import annotations

import os

from ..datasets.generators import PROFILES
from ..query.executor import Executor
from ..query.sql import parse as parse_sql
from ..server.service import render_chart
from ..shard import open_store
from ..storage.config import StorageConfig
from ..storage.engine import StorageEngine
from ..viz.chart import to_pbm
from .experiments import DATASETS
from .report import BenchTable

#: The swept shard counts (E19's x-axis).
SHARD_COUNTS = (1, 2, 4, 8)

_WIDTH = 256
_HEIGHT = 64


def _identity_sql(series):
    return "SELECT M4(v) FROM %s GROUP BY SPANS(%d)" % (series, _WIDTH)


def _load_series(engine, plan, n_points):
    for seed, (name, dataset) in enumerate(plan):
        t, v = PROFILES[dataset].generate(n_points, seed=seed)
        engine.create_series(name)
        engine.write_batch(name, t, v)
    engine.flush_all()


def _fingerprints(engine, plan):
    """``{series: (rows, pbm)}`` — the byte-identity evidence."""
    out = {}
    for name, _dataset in plan:
        if getattr(engine, "is_sharded", False):
            table = engine.execute_sql(_identity_sql(name))
            matrix, _ = engine.render_series(name, _WIDTH, _HEIGHT)
        else:
            table = Executor(engine).execute(
                parse_sql(_identity_sql(name)))
            matrix, _ = render_chart(engine, name, _WIDTH, _HEIGHT)
        out[name] = (tuple(table.rows), to_pbm(matrix))
    return out


def shard_identity(tmp_dir, n_points=6_000,
                   shard_counts=SHARD_COUNTS, progress=None):
    """``{shards: bool}`` — byte/pixel identity vs the pre-shard engine.

    One series per Table 2 dataset; the reference store is a plain
    :class:`StorageEngine` (never touched by :mod:`repro.shard`).
    """
    say = progress or (lambda msg: None)
    plan = [("root.id.%s" % d.lower(), d) for d in DATASETS]
    ref_dir = os.path.join(tmp_dir, "identity-ref")
    with StorageEngine(ref_dir, StorageConfig()) as reference:
        _load_series(reference, plan, n_points)
        expected = _fingerprints(reference, plan)
    verdict = {}
    for n in shard_counts:
        store = os.path.join(tmp_dir, "identity-%d" % n)
        with open_store(store, StorageConfig(), shards=n) as engine:
            _load_series(engine, plan, n_points)
            got = _fingerprints(engine, plan)
        verdict[n] = got == expected
        say("E19 identity shards=%d: %s"
            % (n, "byte-identical" if verdict[n] else "MISMATCH"))
    return verdict


def shard_scaling(tmp_dir, n_points=20_000, n_series=8, users=8,
                  duration=2.0, width=_WIDTH, timeout_ms=2_000,
                  workers=8, queue_depth=32,
                  shard_counts=SHARD_COUNTS, progress=None):
    """Run E19; returns ``(rows, table)``.

    ``rows`` match the artifact schema's ``shards`` kind; ``table`` is
    the human rendering.  The store holds ``n_series`` series cycling
    through the Table 2 dataset profiles so the hash placement actually
    spreads load, and every shard count is driven by the same
    closed-loop session workload against an identically-shaped server
    (same admission pool, same deadline).
    """
    from ..server import ServerConfig, start_server
    from ..server.workload import SessionWorkload
    say = progress or (lambda msg: None)
    identity = shard_identity(tmp_dir, shard_counts=shard_counts,
                              progress=progress)
    plan = [("root.sweep%02d" % i, DATASETS[i % len(DATASETS)])
            for i in range(n_series)]
    table = BenchTable(
        "E19 shard scaling: %d series, %d closed-loop users, %.1fs "
        "window, cpu_count=%d"
        % (n_series, users, duration, os.cpu_count() or 1),
        ["shards", "mode", "users", "total", "ok", "throughput (req/s)",
         "p50 (s)", "p95 (s)", "speedup vs 1", "identical"])
    rows = []
    base_throughput = None
    for n in shard_counts:
        store = os.path.join(tmp_dir, "sweep-%d" % n)
        engine = open_store(store, StorageConfig(), shards=n)
        _load_series(engine, plan, n_points)
        handle = start_server(
            engine, ServerConfig(port=0, quiet=True, workers=workers,
                                 queue_depth=queue_depth),
            own_engine=True)
        try:
            workload = SessionWorkload(handle.url, width=width, seed=n,
                                       timeout_ms=timeout_ms)
            report = workload.run_closed(users=users, duration=duration)
        finally:
            handle.stop()
        if base_throughput is None:
            base_throughput = report.throughput or 1e-9
        speedup = report.throughput / base_throughput
        say("E19 shards=%d: %.1f req/s (%.2fx vs shards=1)"
            % (n, report.throughput, speedup))
        rows.append({
            "experiment": "E19",
            "shards": n,
            "mode": report.mode,
            "users": report.users,
            "total": report.total,
            "ok": report.ok,
            "throughput": report.throughput,
            "p50_seconds": report.percentile(0.50),
            "p95_seconds": report.percentile(0.95),
            "speedup_vs_1": speedup,
            "identical": bool(identity.get(n, False)),
        })
        table.add_row(n, report.mode, report.users, report.total,
                      report.ok, report.throughput,
                      report.percentile(0.50), report.percentile(0.95),
                      speedup, identity.get(n, False))
    return rows, table
