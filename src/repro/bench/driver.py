"""Scenario-matrix benchmark driver (IoTDB-Benchmark style).

The paper sweeps one axis at a time; every TSMS benchmark suite sweeps
a *matrix*, because the axes interact (overlap changes what deletes
cost, parallelism changes what the tile cache saves, cardinality
changes everything).  This driver owns that matrix:

* :func:`default_matrix` — the standing scenario grid: cardinality x
  overlap % x delete % x operator (m4udf/m4lsm/m4lsm-tiles) x
  parallelism x tile-cache on/off, each cell flagged ``gate=True`` when
  the CI regression gate watches it;
* :func:`run_matrix` — runs cells through the existing
  :func:`~repro.bench.harness.prepare_engine` /
  :func:`~repro.bench.harness.timed_query` harness, **reusing one
  engine across all cells that share a store fingerprint**, and emits
  one schema-validated artifact (see :mod:`repro.bench.schema`) with
  per-cell wall-clock p50/p99 + samples, I/O counters, and an identity
  check against the M4-UDF reference answer;
* noise-floor helpers (:func:`median`, :func:`rel_spread`,
  :func:`noise_allowance`, :func:`within_factor`, :func:`wall_ratio`) —
  the *only* sanctioned way to assert on wall-clock numbers anywhere in
  the benchmark suite.  I/O counters are deterministic and are the
  authoritative signal; wall-clock is asserted with repeats and an
  absolute noise floor, never from a single cold run.
"""

from __future__ import annotations

import dataclasses
import threading
import time

import numpy as np

from ..datasets.generators import PROFILES
from ..datasets.workloads import load_with_overlap
from .harness import bench_points, make_operator, prepare_engine
from .schema import new_artifact

#: Wall-clock below this is indistinguishable from scheduler noise on
#: this substrate; ratio assertions clamp to it (see :func:`wall_ratio`).
WALL_NOISE_FLOOR_SECONDS = 5e-3

#: Tile-cache byte budget for ``tiles=True`` cells.
TILE_CACHE_BYTES = 32 * 1024 * 1024

#: Points per batch offered by the bench ingest pump.
INGEST_BATCH_POINTS = 500

#: Ingest queue budget during bench cells (~4 batches): small enough
#: that the overload cell visibly sheds, large enough that sustained
#: rates never do.
INGEST_QUEUE_BYTES = 32 * 1024

#: The pump runs at least this long even when the timed queries finish
#: faster, so ingest cells always measure queries *during* ingest.
INGEST_MIN_SECONDS = 0.25

#: The series the bench pump appends to.  Dedicated — never the queried
#: series — so the gated read-side I/O counters stay deterministic.
INGEST_SERIES = "ingest-feed"

#: Series-count ceiling applied to extra cardinality series data so a
#: high-cardinality cell stresses the catalog, not the generator.
_EXTRA_SEED_BASE = 1000


# --------------------------------------------------------------------
# noise-floor helpers


def median(values):
    """The p50 of a sequence (midpoint of the sorted values)."""
    ordered = sorted(values)
    if not ordered:
        raise ValueError("median of empty sequence")
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def quantile(values, q):
    """Nearest-rank quantile (q in [0, 1]) of a sequence."""
    ordered = sorted(values)
    if not ordered:
        raise ValueError("quantile of empty sequence")
    index = min(int(q * len(ordered)), len(ordered) - 1)
    return ordered[index]


def rel_spread(samples):
    """(max - min) / median of repeated wall-clock samples.

    The driver's noise estimate: when repeats of the *same* query vary
    by 30%, a 20% cross-run difference means nothing.
    """
    mid = median(samples)
    if mid <= 0:
        return 0.0
    return (max(samples) - min(samples)) / mid


def noise_allowance(base_samples, cur_samples, threshold):
    """The relative regression allowance for one wall-clock comparison.

    At least ``threshold``; widened to twice the worst observed
    relative spread when the repeated runs themselves were noisier than
    that (the repeat-and-median guard the fig-test assertions and the
    CI gate both ride on).
    """
    spread = max(rel_spread(base_samples), rel_spread(cur_samples))
    return max(threshold, 2.0 * spread)


def wall_ratio(value_seconds, baseline_seconds,
               floor=WALL_NOISE_FLOOR_SECONDS):
    """``value / baseline`` with both clamped up to the noise floor.

    Two sub-floor latencies compare as 1.0: there is no signal in
    microsecond differences on a shared-runner substrate.
    """
    return max(value_seconds, floor) / max(baseline_seconds, floor)


def within_factor(value_seconds, baseline_seconds, factor,
                  floor=WALL_NOISE_FLOOR_SECONDS):
    """Noise-floored upper-bound check for wall-clock assertions.

    True when ``value`` is at most ``factor`` times the baseline after
    clamping both to the noise floor — i.e. a sub-floor latency can
    never fail, and a sub-floor baseline doesn't make the bound
    impossibly tight.
    """
    return wall_ratio(value_seconds, baseline_seconds, floor) <= factor


def grew_by(value_seconds, baseline_seconds, factor,
            floor=WALL_NOISE_FLOOR_SECONDS):
    """Noise-floored lower-bound check (latency must have grown).

    True when ``value`` exceeds ``factor`` times the baseline after
    clamping to the noise floor, *or* when the comparison carries no
    signal because the larger value itself sits under the floor (a
    tiny-scale run cannot refute a growth claim).
    """
    if value_seconds <= floor:
        return True
    return wall_ratio(value_seconds, baseline_seconds, floor) > factor


# --------------------------------------------------------------------
# the scenario matrix


@dataclasses.dataclass(frozen=True)
class CellConfig:
    """One scenario cell: a store shape plus the operator queried."""

    dataset: str = "MF03"
    cardinality: int = 1
    overlap_pct: int = 0
    delete_pct: int = 0
    operator: str = "m4lsm"       # m4udf | m4lsm | m4lsm-tiles
    parallelism: int = 1
    tiles: bool = False           # engine-level tile cache on/off
    w: int = 128
    seed: int = 0
    ingest_rate: int = 0          # points/s streamed while querying
    skew: str = "none"            # arrival order: none | late

    @property
    def cell_id(self):
        # Idle cells keep the exact legacy id so baselines written
        # before the ingest axis existed still line up; streaming
        # cells append the new axes.
        base = ("card=%d;ov=%d;del=%d;op=%s;par=%d;tiles=%s"
                % (self.cardinality, self.overlap_pct, self.delete_pct,
                   self.operator, self.parallelism,
                   "on" if self.tiles else "off"))
        if self.ingest_rate:
            base += ";ingest=%d;skew=%s" % (self.ingest_rate, self.skew)
        return base

    def as_dict(self):
        return dataclasses.asdict(self)

    def store_fingerprint(self, points):
        """Everything that shapes the store (NOT the operator / w).

        Cells with equal fingerprints are served by one shared engine —
        the driver's engine-reuse key.  The ingest axes are part of the
        fingerprint because streaming cells *mutate* their store; an
        idle cell must never inherit a pumped-into engine.
        """
        return (self.dataset, points, self.cardinality, self.overlap_pct,
                self.delete_pct, self.parallelism, self.tiles, self.seed,
                self.ingest_rate, self.skew)


@dataclasses.dataclass(frozen=True)
class Cell:
    """A matrix entry: the config plus whether CI gates on it."""

    config: CellConfig
    gate: bool = False


def default_matrix(dataset="MF03", w=128):
    """The standing scenario matrix (26 cells, 12 gated).

    * base grid: cardinality {1,8} x overlap {0,20}% x delete {0,20}%
      x operator {m4udf, m4lsm} — gated at cardinality 1;
    * parallelism arm: the hardest base store (overlap 20, delete 20)
      at 2 and 4 pipeline workers — gated at 4;
    * tile-cache arm: same store with the engine cache on, plain
      M4-LSM vs the tiled operator — gated at overlap 20;
    * cardinality arm: a 32-series store, ungated (prep-heavy; run on
      full sweeps, not per-PR);
    * ingest arm: queries timed *while* a pump streams writes into a
      dedicated series — sustained in-order rate for plain and tiled
      M4-LSM (gated: dashboards-during-ingest is the live subsystem's
      contract), a late-arrival skew variant exercising the
      out-of-order invalidation fallback, and an ungated overload cell
      whose offered rate exceeds the queue budget so backpressure
      sheds are visible in the artifact.
    """
    cells = []
    for card in (1, 8):
        for ov in (0, 20):
            for dl in (0, 20):
                for op in ("m4udf", "m4lsm"):
                    cells.append(Cell(CellConfig(
                        dataset=dataset, cardinality=card, overlap_pct=ov,
                        delete_pct=dl, operator=op, w=w),
                        gate=(card == 1)))
    for par in (2, 4):
        for op in ("m4udf", "m4lsm"):
            cells.append(Cell(CellConfig(
                dataset=dataset, overlap_pct=20, delete_pct=20,
                operator=op, parallelism=par, w=w), gate=(par == 4)))
    for ov in (0, 20):
        for op in ("m4lsm", "m4lsm-tiles"):
            cells.append(Cell(CellConfig(
                dataset=dataset, overlap_pct=ov, delete_pct=20,
                operator=op, tiles=True, w=w), gate=(ov == 20)))
    for op in ("m4udf", "m4lsm"):
        cells.append(Cell(CellConfig(
            dataset=dataset, cardinality=32, operator=op, w=w),
            gate=False))
    for op in ("m4lsm", "m4lsm-tiles"):
        for skew in ("none", "late"):
            cells.append(Cell(CellConfig(
                dataset=dataset, operator=op, tiles=True,
                ingest_rate=20_000, skew=skew, w=w),
                gate=(skew == "none")))
    cells.append(Cell(CellConfig(
        dataset=dataset, operator="m4lsm", tiles=True,
        ingest_rate=400_000, skew="none", w=w), gate=False))
    return cells


def select_cells(cells, pattern=None, gated_only=False):
    """Filter a cell list by ``--cells`` syntax.

    ``pattern`` is a comma-separated list of substrings matched against
    cell ids (a cell survives when *any* substring matches); the
    special token ``gated`` selects gated cells.
    """
    chosen = list(cells)
    if gated_only:
        chosen = [c for c in chosen if c.gate]
    if pattern:
        needles = [p.strip() for p in pattern.split(",") if p.strip()]
        if "gated" in needles:
            needles.remove("gated")
            chosen = [c for c in chosen if c.gate]
        if needles:
            chosen = [c for c in chosen
                      if any(n in c.config.cell_id for n in needles)]
    return chosen


# --------------------------------------------------------------------
# data generation + engine preparation


def generate_cell_data(config, points):
    """The deterministic per-series data of one cell's store.

    Returns ``[(series_name, timestamps, values), ...]`` — the primary
    series first, then the ``cardinality - 1`` extra series, each from
    its own derived seed.  Byte-identical across calls with equal
    arguments (asserted by the determinism suite).
    """
    profile = PROFILES[config.dataset]
    out = [(config.dataset.lower(),
            *profile.generate(points, seed=config.seed))]
    for i in range(config.cardinality - 1):
        out.append(("extra-%03d" % i,
                    *profile.generate(points,
                                      seed=config.seed
                                      + _EXTRA_SEED_BASE + i)))
    return out


def prepare_cell_engine(config, points):
    """A :class:`~repro.bench.harness.PreparedEngine` for one store
    fingerprint: the primary series via :func:`prepare_engine` (with
    the cell's overlap/delete workload), plus the extra cardinality
    series written with the same out-of-order overlap profile.
    """
    prepared = prepare_engine(
        dataset=config.dataset, n_points=points,
        overlap_pct=config.overlap_pct, delete_pct=config.delete_pct,
        parallelism=config.parallelism, seed=config.seed,
        tile_cache_bytes=TILE_CACHE_BYTES if config.tiles else 0)
    for name, t, v in generate_cell_data(config, points)[1:]:
        load_with_overlap(prepared.engine, name, t, v,
                          config.overlap_pct, seed=config.seed)
    return prepared


# --------------------------------------------------------------------
# the bench ingest pump


class _IngestPump:
    """Streams writes into :data:`INGEST_SERIES` while a cell is timed.

    Open-loop: batches fire on their offered schedule whether or not
    the last one was accepted, so an overloaded queue sheds (counted)
    instead of silently slowing the offered rate — the same contract
    as the loadgen pump, but in-process through
    :class:`repro.ingest.IngestController`.  ``skew="late"`` holds
    back every fourth batch and re-emits it two batches later, driving
    the engine's out-of-order invalidation fallback instead of the
    incremental tail path.

    The pump targets a dedicated series so the *queried* series' tiles
    and read-side I/O counters — the gated signal — stay untouched.
    """

    def __init__(self, engine, config):
        from ..ingest import IngestController
        self._controller = IngestController(
            engine, queue_bytes=INGEST_QUEUE_BYTES, retry_after_seconds=0)
        # Resume after the series' tail so skew="none" really is the
        # in-order append path, even when a previous cell's pump
        # already wrote into this shared engine.
        self._t_next = 0
        if INGEST_SERIES in engine.series_names():
            chunks = engine.chunks_for(INGEST_SERIES)
            if chunks:
                self._t_next = max(c.end_time for c in chunks) + 1
        self._rate = int(config.ingest_rate)
        self._skew = config.skew
        self._stop = threading.Event()
        self._started = None
        self.batches = 0
        self.points = 0
        self.sheds = 0
        self.late_batches = 0
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="bench-ingest-pump")

    def __enter__(self):
        self._started = time.monotonic()
        self._thread.start()
        return self

    def __exit__(self, *exc_info):
        # Hold the window open to the minimum so sub-millisecond query
        # cells still measure "during ingest", not "after one batch".
        remaining = self._started + INGEST_MIN_SECONDS - time.monotonic()
        if remaining > 0:
            time.sleep(remaining)
        self._stop.set()
        self._thread.join(timeout=30)
        self._controller.close()

    def summary(self):
        """The per-cell artifact row's ``ingest`` object."""
        return {"offered_rate": self._rate, "skew": self._skew,
                "batches": int(self.batches), "points": int(self.points),
                "sheds": int(self.sheds),
                "late_batches": int(self.late_batches)}

    def _submit(self, t, v, late=False):
        from ..errors import IngestBackpressureError
        try:
            self._controller.submit(INGEST_SERIES, t, v)
        except IngestBackpressureError:
            self.sheds += 1
            return
        self.batches += 1
        self.points += t.size
        if late:
            self.late_batches += 1

    def _run(self):
        batch = INGEST_BATCH_POINTS
        interval = batch / float(self._rate)
        begin = time.monotonic()
        held = None  # (t, v) stashed for late re-emission
        held_at = 0
        k = 0
        t_next = self._t_next
        while not self._stop.is_set():
            delay = begin + k * interval - time.monotonic()
            if delay > 0 and self._stop.wait(delay):
                return
            t = np.arange(t_next, t_next + batch, dtype=np.int64)
            v = np.sin(t * 1e-3)
            t_next += batch
            if self._skew == "late" and held is None and k % 4 == 0:
                held, held_at = (t, v), k
            else:
                self._submit(t, v)
                if held is not None and k >= held_at + 2:
                    self._submit(*held, late=True)
                    held = None
            k += 1
        if held is not None:
            self._submit(*held, late=True)


# --------------------------------------------------------------------
# running cells


def _timed_samples(operator, prepared, qs, qe, w, repeats):
    """``repeats`` timed runs: all wall samples + final-run counters.

    Unlike :func:`~repro.bench.harness.timed_query` (best-of-N, one
    scalar) this keeps every sample so artifacts can carry the noise
    floor with the number.  Counters come from the final run — for the
    tiled operator that is the *warmed* state, which is the state the
    cache exists to serve.
    """
    stats = prepared.engine.stats
    samples, result, diff = [], None, None
    for _ in range(max(repeats, 1)):
        before = stats.snapshot()
        started = time.perf_counter()
        result = operator.query(prepared.series, qs, qe, w)
        samples.append(time.perf_counter() - started)
        diff = stats.diff(before)
    return samples, result, diff


def _cell_viewport(config, prepared):
    """The query range of one cell.

    Plain cells query the full series extent like every paper
    experiment.  ``tiles=True`` cells query the *snapped* viewport
    (:func:`repro.core.tiles.snap_viewport`) instead — an unaligned
    range would bypass the cache entirely and measure nothing; snapping
    is exactly what a dashboard front end does before asking.
    """
    if not config.tiles:
        return prepared.t_qs, prepared.t_qe
    from ..core.tiles import snap_viewport
    return snap_viewport(prepared.t_qs, prepared.t_qe, config.w)


def _identity(config, result, reference):
    """The cell's identity check against the reference answer.

    * ``m4udf`` is the reference — nothing to check against;
    * ``m4lsm`` must be semantically equal to M4-UDF (the paper's
      exactness claim);
    * ``m4lsm-tiles`` must be *byte*-equal to plain M4-LSM over the
      same viewport (the cache is a memoization, never an
      approximation).
    """
    if config.operator == "m4lsm":
        return {"checked": True,
                "equal": bool(result.semantically_equal(reference))}
    if config.operator == "m4lsm-tiles":
        return {"checked": True, "equal": bool(result == reference)}
    return {"checked": False, "equal": True}


def run_matrix(cells=None, points=None, repeats=5, pattern=None,
               gated_only=False, progress=None):
    """Run the scenario matrix and return a validated artifact doc.

    Cells are grouped by store fingerprint so every group shares one
    prepared engine (closed before the next group opens); within a
    group the reference answers (M4-UDF, plain M4-LSM) are computed
    once and reused by every cell's identity check.
    """
    say = progress or (lambda *_: None)
    chosen = select_cells(cells if cells is not None else default_matrix(),
                          pattern=pattern, gated_only=gated_only)
    if not chosen:
        raise ValueError("cell selection matched nothing")
    points = bench_points(points)
    groups = {}
    for cell in chosen:
        groups.setdefault(cell.config.store_fingerprint(points),
                          []).append(cell)
    rows = []
    for i, (fingerprint, group) in enumerate(sorted(groups.items(),
                                                    key=lambda kv: kv[0])):
        config = group[0].config
        say("engine %d/%d: card=%d ov=%d del=%d par=%d tiles=%s "
            "(%d cells)" % (i + 1, len(groups), config.cardinality,
                            config.overlap_pct, config.delete_pct,
                            config.parallelism,
                            "on" if config.tiles else "off", len(group)))
        with prepare_cell_engine(config, points) as prepared:
            references = {}

            def reference(kind, qs, qe, w):
                # One reference query per (operator, viewport, w) per
                # engine, shared by every cell's identity check.
                key = (kind, qs, qe, w)
                if key not in references:
                    references[key] = make_operator(
                        prepared, kind).query(prepared.series, qs, qe, w)
                return references[key]

            for cell in sorted(group,
                               key=lambda c: c.config.operator):
                cfg = cell.config
                qs, qe = _cell_viewport(cfg, prepared)
                operator = make_operator(prepared, cfg.operator)
                ingest = None
                if cfg.ingest_rate:
                    with _IngestPump(prepared.engine, cfg) as pump:
                        samples, result, diff = _timed_samples(
                            operator, prepared, qs, qe, cfg.w, repeats)
                    ingest = pump.summary()
                else:
                    samples, result, diff = _timed_samples(
                        operator, prepared, qs, qe, cfg.w, repeats)
                ref_kind = ("m4lsm" if cfg.operator == "m4lsm-tiles"
                            else "m4udf")
                identity = _identity(
                    cfg, result,
                    reference(ref_kind, qs, qe, cfg.w)
                    if cfg.operator != "m4udf" else None)
                rows.append({
                    "id": cfg.cell_id,
                    "config": cfg.as_dict(),
                    "gate": cell.gate,
                    "repeats": int(repeats),
                    "wall": {
                        "p50_seconds": median(samples),
                        "p99_seconds": quantile(samples, 0.99),
                        "samples": samples,
                    },
                    "io": diff.as_dict(),
                    "identity": identity,
                })
                if ingest is not None:
                    rows[-1]["ingest"] = ingest
                say("  %s  p50=%.4fs  chunk_loads=%d  identity=%s%s"
                    % (cfg.cell_id, median(samples), diff.chunk_loads,
                       "ok" if identity["equal"] else "MISMATCH",
                       "  ingest=%dpts sheds=%d" % (ingest["points"],
                                                    ingest["sheds"])
                       if ingest else ""))
    return new_artifact("matrix", rows, points, repeats=int(repeats))
