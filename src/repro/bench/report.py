"""Result tables for the benchmark harness: terminal and Markdown."""

from __future__ import annotations


class BenchTable:
    """An ordered table of benchmark rows with pretty printing.

    >>> t = BenchTable("demo", ["w", "latency"])
    >>> t.add_row(10, 0.0123)
    >>> "demo" in t.render()
    True
    """

    def __init__(self, title, columns):
        self.title = title
        self.columns = list(columns)
        self.rows = []

    def add_row(self, *cells):
        """Append one row (must match the column count)."""
        if len(cells) != len(self.columns):
            raise ValueError("expected %d cells, got %d"
                             % (len(self.columns), len(cells)))
        self.rows.append(tuple(cells))

    def _formatted(self):
        return [[_fmt(cell) for cell in row] for row in self.rows]

    def render(self):
        """Fixed-width text rendering with a title line."""
        body = self._formatted()
        widths = [len(c) for c in self.columns]
        for row in body:
            widths = [max(w, len(cell)) for w, cell in zip(widths, row)]
        lines = [self.title,
                 "  ".join(c.ljust(w)
                           for c, w in zip(self.columns, widths)),
                 "  ".join("-" * w for w in widths)]
        for row in body:
            lines.append("  ".join(cell.ljust(w)
                                   for cell, w in zip(row, widths)))
        return "\n".join(lines)

    def render_markdown(self):
        """GitHub-flavoured Markdown rendering."""
        body = self._formatted()
        lines = ["### %s" % self.title, "",
                 "| " + " | ".join(self.columns) + " |",
                 "|" + "|".join("---" for _ in self.columns) + "|"]
        for row in body:
            lines.append("| " + " | ".join(row) + " |")
        return "\n".join(lines)

    def column(self, name):
        """All raw values of one column."""
        index = self.columns.index(name)
        return [row[index] for row in self.rows]


def _fmt(cell):
    if isinstance(cell, float):
        if cell != 0 and abs(cell) < 0.001:
            return "%.2e" % cell
        return "%.4g" % cell
    return str(cell)


def monotone_non_decreasing(values, tolerance=0.0):
    """True when the sequence never drops by more than ``tolerance``
    (relative).  Used by shape assertions on noisy latency sweeps."""
    for earlier, later in zip(values, values[1:]):
        if later < earlier * (1.0 - tolerance):
            return False
    return True


def roughly_constant(values, spread=0.5):
    """True when max/min stay within ``1 +- spread`` of the mean."""
    if not values:
        return True
    mean = sum(values) / len(values)
    if mean == 0:
        return all(v == 0 for v in values)
    return all(abs(v - mean) <= spread * mean for v in values)
