"""Benchmark harness: engine preparation, timed queries, counters.

All the paper's experiments compare the latency of two operators under a
swept parameter.  :func:`prepare_engine` builds a storage directory for
one dataset/workload combination; :func:`timed_query` runs one operator
and returns wall-clock seconds together with the I/O counters accumulated
during the query (the substrate-independent cost signal).
"""

from __future__ import annotations

import dataclasses
import os
import shutil
import tempfile
import time

from ..core.m4 import M4UDFOperator
from ..core.m4lsm import M4LSMOperator
from ..datasets.generators import PROFILES
from ..datasets.workloads import apply_delete_workload, load_with_overlap
from ..storage.config import StorageConfig
from ..storage.engine import StorageEngine

#: Default bench scale; override with the REPRO_BENCH_POINTS env var.
DEFAULT_POINTS = 400_000


def bench_points(explicit=None):
    """Point count for benches.

    An explicit count always wins; otherwise the ``REPRO_BENCH_POINTS``
    env var, otherwise :data:`DEFAULT_POINTS`.
    """
    if explicit is not None:
        return int(explicit)
    raw = os.environ.get("REPRO_BENCH_POINTS")
    return int(raw) if raw else DEFAULT_POINTS


@dataclasses.dataclass
class PreparedEngine:
    """A ready-to-query engine plus its workload description."""

    engine: StorageEngine
    series: str
    timestamps: object   # int64 array of the written points
    t_qs: int
    t_qe: int
    data_dir: str
    owns_dir: bool = False

    def close(self):
        """Release the engine (and temp dir, when owned)."""
        self.engine.close()
        if self.owns_dir:
            shutil.rmtree(self.data_dir, ignore_errors=True)

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()


def prepare_engine(dataset="MF03", n_points=None, chunk_points=1000,
                   overlap_pct=0, delete_pct=0, n_deletes=None,
                   delete_range=None, data_dir=None, seed=0,
                   points_per_page=None, parallelism=1,
                   tile_cache_bytes=0, tile_cache_spans=64):
    """Build an engine loaded with one dataset under one workload.

    Args:
        dataset: one of the Table 2 profiles (BallSpeed/MF03/KOB/RcvTime).
        n_points: dataset size (defaults to :func:`bench_points`).
        chunk_points: points per chunk (Table 4's threshold).
        overlap_pct: target percentage of overlapping chunks (Fig. 12).
        delete_pct / n_deletes / delete_range: delete workload
            (Figs. 13/14).
        data_dir: reuse a directory; a temp dir is created otherwise.
        parallelism: chunk pipeline workers (1 = serial).
        tile_cache_bytes / tile_cache_spans: M4 tile cache knobs (E15;
            0 bytes = off, matching every other experiment).
    """
    t, v = PROFILES[dataset].generate(bench_points(n_points), seed=seed)
    owns = data_dir is None
    if owns:
        data_dir = tempfile.mkdtemp(prefix="repro-bench-")
    config = StorageConfig(
        avg_series_point_number_threshold=chunk_points,
        points_per_page=points_per_page or chunk_points,
        parallelism=parallelism,
        tile_cache_bytes=tile_cache_bytes,
        tile_cache_spans=tile_cache_spans)
    engine = StorageEngine(data_dir, config)
    series = dataset.lower()
    load_with_overlap(engine, series, t, v, overlap_pct, seed=seed)
    if delete_pct or n_deletes:
        apply_delete_workload(engine, series, t, delete_pct=delete_pct,
                              n_deletes=n_deletes,
                              delete_range=delete_range, seed=seed)
    return PreparedEngine(engine=engine, series=series, timestamps=t,
                          t_qs=int(t[0]), t_qe=int(t[-1]) + 1,
                          data_dir=data_dir, owns_dir=owns)


def make_operator(prepared, kind, **kwargs):
    """An operator instance by kind: ``"m4lsm"``, ``"m4udf"`` or
    ``"m4lsm-tiles"`` (tile-cache-backed M4-LSM)."""
    if kind == "m4udf":
        return M4UDFOperator(prepared.engine, **kwargs)
    if kind == "m4lsm":
        return M4LSMOperator(prepared.engine, **kwargs)
    if kind == "m4lsm-tiles":
        from ..core.tiles import TiledM4Operator
        return TiledM4Operator(prepared.engine, **kwargs)
    raise ValueError("unknown operator kind %r" % kind)


@dataclasses.dataclass(frozen=True)
class QueryTiming:
    """One timed query: latency plus the I/O counters it accumulated.

    ``metrics`` is the engine's full metrics-registry snapshot taken
    right after the final run, so persisted bench rows carry the
    observability state (histogram quantiles included) alongside the
    wall-clock number.
    """

    seconds: float
    stats: object  # IoStats diff
    result: object  # M4Result
    metrics: object = None  # MetricsRegistry snapshot dict
    samples: tuple = ()  # every repeat's wall-clock, for noise floors

    def as_row(self):
        """A JSON-able row for BENCH_*.json result files.

        Cache effectiveness is surfaced explicitly: the shared
        ChunkCache's hits/misses now flow through IoStats, so every
        bench row reports them even though the cache counts internally.
        """
        stats = self.stats.as_dict() if self.stats is not None else {}
        return {
            "seconds": self.seconds,
            "stats": stats,
            "cache_hits": stats.get("cache_hits", 0),
            "cache_misses": stats.get("cache_misses", 0),
            "metrics": self.metrics,
        }


def timed_query(operator, prepared, w, t_qs=None, t_qe=None, repeats=1):
    """Run a query ``repeats`` times; keep the best latency.

    Counters are captured for the final run only (they are identical
    across runs: the decoded-page cache is per-query).
    """
    t_qs = prepared.t_qs if t_qs is None else t_qs
    t_qe = prepared.t_qe if t_qe is None else t_qe
    engine_stats = prepared.engine.stats
    samples = []
    result = None
    diff = None
    for _ in range(max(repeats, 1)):
        before = engine_stats.snapshot()
        started = time.perf_counter()
        result = operator.query(prepared.series, t_qs, t_qe, w)
        samples.append(time.perf_counter() - started)
        diff = engine_stats.diff(before)
    return QueryTiming(seconds=min(samples), stats=diff, result=result,
                       metrics=prepared.engine.metrics.snapshot(),
                       samples=tuple(samples))
