"""Converter for pre-schema ``BENCH_*.json`` artifacts.

PRs 2-5 each wrote a hand-rolled ``{"rows": [...]}`` file with its own
field set.  This module lifts those four shapes into the versioned
schema (:mod:`repro.bench.schema`) so `scripts/generate_experiments.py`
and the gate only ever consume validated artifacts.  The rows
themselves are preserved verbatim — only the envelope (schema version,
kind, substrate meta) is added, with ``meta.converted = true`` and
unknown substrate fields marked ``"unknown"`` because the original
runs never recorded them.

Run as a script to convert files in place (already-valid artifacts are
left untouched)::

    PYTHONPATH=src python -m repro.bench.convert benchmarks/BENCH_*.json
"""

from __future__ import annotations

import json
import os
import sys

from .schema import (
    SCHEMA_VERSION,
    SchemaError,
    validate_artifact,
    write_artifact,
)

#: Row fields that uniquely identify each legacy artifact kind.
_KIND_SIGNATURES = (
    ("parallelism", "parallel_seconds"),
    ("durability", "verify_on_seconds"),
    ("tiles", "p50_speedup"),
    ("server", "shed_rate"),
)


def detect_kind(rows):
    """The artifact kind implied by a legacy row's field names."""
    if not rows or not isinstance(rows[0], dict):
        raise SchemaError("cannot detect artifact kind: no rows")
    for kind, signature in _KIND_SIGNATURES:
        if signature in rows[0]:
            return kind
    raise SchemaError("cannot detect artifact kind from row fields %s"
                      % sorted(rows[0]))


def convert_legacy(doc, created_unix=0.0):
    """Wrap a legacy ``{"rows": [...]}`` document in the schema.

    Substrate meta is unknowable after the fact, so every field the
    original run didn't record is ``"unknown"`` / ``0`` — which also
    makes the gate treat wall-clock comparisons against converted
    artifacts as advisory (mismatched machine ids).
    """
    if not isinstance(doc, dict) or not isinstance(doc.get("rows"), list):
        raise SchemaError("legacy artifact must be an object with a "
                          "'rows' list")
    rows = doc["rows"]
    return validate_artifact({
        "schema": SCHEMA_VERSION,
        "kind": detect_kind(rows),
        "meta": {
            "git_sha": "unknown",
            "python": "unknown",
            "platform": "unknown",
            "machine": "unknown",
            "cpu_count": 0,
            "machine_id": "unknown",
            "points": 0,
            "created_unix": float(created_unix),
            "converted": True,
        },
        "rows": rows,
    })


def convert_file(path):
    """Convert one file in place; returns ``"converted"``, ``"ok"``
    (already schema-valid) — or raises :class:`SchemaError`."""
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    if isinstance(doc, dict) and doc.get("schema") == SCHEMA_VERSION:
        validate_artifact(doc, path=path)
        return "ok"
    converted = convert_legacy(doc, created_unix=os.path.getmtime(path))
    write_artifact(path, converted)
    return "converted"


def main(argv=None):
    paths = argv if argv is not None else sys.argv[1:]
    if not paths:
        print("usage: python -m repro.bench.convert BENCH_*.json",
              file=sys.stderr)
        return 2
    status = 0
    for path in paths:
        try:
            print("%s: %s" % (path, convert_file(path)))
        except (SchemaError, OSError, ValueError) as exc:
            print("error: %s" % exc, file=sys.stderr)
            status = 1
    return status


if __name__ == "__main__":
    sys.exit(main())
