"""The paper's experiments (Figures 10-14, Tables, ablations) as
reusable sweep functions.

Each function prepares engines, sweeps one axis, and returns one or more
:class:`BenchTable` objects whose rows mirror the series the paper plots.
The pytest-benchmark files under ``benchmarks/`` are thin wrappers that
time individual queries; the EXPERIMENTS.md generator calls these
functions directly.
"""

from __future__ import annotations

import time

import numpy as np

from ..core.index import StepRegression
from ..datasets.generators import PROFILES, dataset_summary
from ..viz.pixels import compare_pixels
from ..viz.raster import PixelGrid, rasterize
from ..viz.reduction import REDUCERS
from .harness import bench_points, make_operator, prepare_engine, timed_query
from .report import BenchTable

DATASETS = ("BallSpeed", "MF03", "KOB", "RcvTime")
DEFAULT_W = 100
DEFAULT_OVERLAP = 10
DEFAULT_DELETE_PCT = 10


def table2_datasets(n_points=None):
    """E1 — Table 2: dataset summary at the bench scale."""
    table = BenchTable("Table 2: dataset summary (scaled)",
                       ["Dataset", "Entire time range", "# Points",
                        "# Points (paper)"])
    for name, duration, count in dataset_summary(bench_points(n_points)):
        table.add_row(name, duration, count, PROFILES[name].paper_points)
    return table


def fig8_9_step_regression(n_points=20_000, chunk_points=1000):
    """E2 — Figures 8/9: timestamp-position steps and learned parameters."""
    table = BenchTable(
        "Fig 8/9: step regression per dataset (first chunk)",
        ["Dataset", "median delta", "K", "segments", "max err (pos)",
         "delta mean", "delta std"])
    for name in DATASETS:
        t, _v = PROFILES[name].generate(n_points)
        chunk_t = t[:chunk_points]
        deltas = np.diff(chunk_t)
        regression = StepRegression.fit(chunk_t)
        table.add_row(name, float(np.median(deltas)), regression.slope,
                      regression.n_segments, regression.max_error,
                      float(deltas.mean()), float(deltas.std()))
    return table


def fig10_vary_w(n_points=None, w_values=(10, 100, 500, 1000, 2000),
                 overlap_pct=DEFAULT_OVERLAP, repeats=1):
    """E3 — Figure 10: latency vs the number of time spans w."""
    tables = []
    for dataset in DATASETS:
        table = BenchTable("Fig 10 (%s): vary w" % dataset,
                           ["w", "M4-UDF (s)", "M4-LSM (s)",
                            "LSM chunk loads", "UDF chunk loads", "equal"])
        with prepare_engine(dataset, n_points=n_points,
                            overlap_pct=overlap_pct) as prepared:
            udf = make_operator(prepared, "m4udf")
            lsm = make_operator(prepared, "m4lsm")
            for w in w_values:
                udf_run = timed_query(udf, prepared, w, repeats=repeats)
                lsm_run = timed_query(lsm, prepared, w, repeats=repeats)
                table.add_row(
                    w, udf_run.seconds, lsm_run.seconds,
                    lsm_run.stats.chunk_loads, udf_run.stats.chunk_loads,
                    udf_run.result.semantically_equal(lsm_run.result))
        tables.append(table)
    return tables


def fig11_vary_range(n_points=None, w=DEFAULT_W,
                     fractions=(0.0625, 0.125, 0.25, 0.5, 1.0),
                     overlap_pct=DEFAULT_OVERLAP, repeats=1):
    """E4 — Figure 11: latency vs query time range length."""
    tables = []
    for dataset in DATASETS:
        table = BenchTable("Fig 11 (%s): vary query range" % dataset,
                           ["range fraction", "M4-UDF (s)", "M4-LSM (s)",
                            "UDF chunk loads", "equal"])
        with prepare_engine(dataset, n_points=n_points,
                            overlap_pct=overlap_pct) as prepared:
            udf = make_operator(prepared, "m4udf")
            lsm = make_operator(prepared, "m4lsm")
            duration = prepared.t_qe - prepared.t_qs
            for fraction in fractions:
                t_qe = prepared.t_qs + max(int(duration * fraction), w)
                udf_run = timed_query(udf, prepared, w, t_qe=t_qe,
                                      repeats=repeats)
                lsm_run = timed_query(lsm, prepared, w, t_qe=t_qe,
                                      repeats=repeats)
                table.add_row(
                    fraction, udf_run.seconds, lsm_run.seconds,
                    udf_run.stats.chunk_loads,
                    udf_run.result.semantically_equal(lsm_run.result))
        tables.append(table)
    return tables


def fig12_vary_overlap(n_points=None, w=DEFAULT_W,
                       overlaps=(0, 10, 20, 30, 40), repeats=1,
                       datasets=DATASETS):
    """E5 — Figure 12: latency vs chunk overlap percentage."""
    tables = []
    for dataset in datasets:
        table = BenchTable("Fig 12 (%s): vary chunk overlap %%" % dataset,
                           ["overlap %", "M4-UDF (s)", "M4-LSM (s)",
                            "LSM index lookups", "equal"])
        for overlap in overlaps:
            with prepare_engine(dataset, n_points=n_points,
                                overlap_pct=overlap) as prepared:
                udf = make_operator(prepared, "m4udf")
                lsm = make_operator(prepared, "m4lsm")
                udf_run = timed_query(udf, prepared, w, repeats=repeats)
                lsm_run = timed_query(lsm, prepared, w, repeats=repeats)
                table.add_row(
                    overlap, udf_run.seconds, lsm_run.seconds,
                    lsm_run.stats.index_lookups,
                    udf_run.result.semantically_equal(lsm_run.result))
        tables.append(table)
    return tables


def fig13_vary_delete_pct(n_points=None, w=DEFAULT_W,
                          delete_pcts=(0, 10, 20, 30, 40), repeats=1,
                          datasets=DATASETS):
    """E6 — Figure 13: latency vs delete percentage."""
    tables = []
    for dataset in datasets:
        table = BenchTable("Fig 13 (%s): vary delete %%" % dataset,
                           ["delete %", "M4-UDF (s)", "M4-LSM (s)",
                            "UDF chunk loads", "equal"])
        for delete_pct in delete_pcts:
            with prepare_engine(dataset, n_points=n_points,
                                overlap_pct=DEFAULT_OVERLAP,
                                delete_pct=delete_pct) as prepared:
                udf = make_operator(prepared, "m4udf")
                lsm = make_operator(prepared, "m4lsm")
                udf_run = timed_query(udf, prepared, w, repeats=repeats)
                lsm_run = timed_query(lsm, prepared, w, repeats=repeats)
                table.add_row(
                    delete_pct, udf_run.seconds, lsm_run.seconds,
                    udf_run.stats.chunk_loads,
                    udf_run.result.semantically_equal(lsm_run.result))
        tables.append(table)
    return tables


def fig14_vary_delete_range(n_points=None, w=DEFAULT_W, n_deletes=20,
                            range_multipliers=(0.1, 0.5, 1, 5, 20),
                            repeats=1, datasets=DATASETS):
    """E7 — Figure 14: latency vs delete time range length.

    Range lengths are multiples of the average chunk time span, so the
    largest setting wipes whole chunks (where the paper sees M4-UDF's
    latency fall, most visibly on the skewed datasets).
    """
    tables = []
    for dataset in datasets:
        table = BenchTable("Fig 14 (%s): vary delete range" % dataset,
                           ["range x chunk span", "M4-UDF (s)",
                            "M4-LSM (s)", "UDF chunk loads", "equal"])
        probe = PROFILES[dataset].generate(bench_points(n_points))[0]
        chunk_span = int((probe[-1] - probe[0])
                         // max(probe.size // 1000, 1))
        for multiplier in range_multipliers:
            delete_range = max(int(chunk_span * multiplier), 1)
            with prepare_engine(dataset, n_points=n_points,
                                overlap_pct=DEFAULT_OVERLAP,
                                n_deletes=n_deletes,
                                delete_range=delete_range) as prepared:
                udf = make_operator(prepared, "m4udf")
                lsm = make_operator(prepared, "m4lsm")
                udf_run = timed_query(udf, prepared, w, repeats=repeats)
                lsm_run = timed_query(lsm, prepared, w, repeats=repeats)
                table.add_row(
                    multiplier, udf_run.seconds, lsm_run.seconds,
                    udf_run.stats.chunk_loads,
                    udf_run.result.semantically_equal(lsm_run.result))
        tables.append(table)
    return tables


def fig1_pixel_accuracy(n_points=200_000, width=400, height=200,
                        dataset="MF03"):
    """E8 — Figures 1/3/16: pixel-exactness of M4 vs the baselines."""
    table = BenchTable(
        "Fig 1: pixel error at %dx%d (%s)" % (width, height, dataset),
        ["Reducer", "points kept", "differing pixels", "error ratio"])
    t, v = PROFILES[dataset].generate(n_points)
    from ..core.series import TimeSeries
    series = TimeSeries(t, v, validate=False)
    t_qs, t_qe = int(t[0]), int(t[-1]) + 1
    grid = PixelGrid(t_qs, t_qe, float(v.min()), float(v.max()),
                     width, height)
    reference = rasterize(series, grid)
    for name, reducer in REDUCERS.items():
        reduced = reducer(t, v, t_qs, t_qe, width)
        comparison = compare_pixels(reference, rasterize(reduced, grid))
        table.add_row(name, len(reduced), comparison.differing_pixels,
                      comparison.error_ratio)
    return table


def headline_scaling(w=1000, point_counts=(100_000, 400_000, 1_000_000),
                     dataset="MF03", repeats=1):
    """E9 — the ~700 ms / 10 M points headline, as a scaling series.

    Reports both operators at increasing sizes; the per-point latency of
    M4-UDF is ~constant while M4-LSM's falls, which is the paper's
    argument made substrate-independent.
    """
    table = BenchTable("Headline: scaling at w=%d (%s)" % (w, dataset),
                       ["points", "M4-UDF (s)", "M4-LSM (s)", "speedup",
                        "LSM points decoded", "UDF points decoded"])
    for n_points in point_counts:
        with prepare_engine(dataset, n_points=n_points) as prepared:
            udf = make_operator(prepared, "m4udf")
            lsm = make_operator(prepared, "m4lsm")
            udf_run = timed_query(udf, prepared, w, repeats=repeats)
            lsm_run = timed_query(lsm, prepared, w, repeats=repeats)
            table.add_row(n_points, udf_run.seconds, lsm_run.seconds,
                          udf_run.seconds / max(lsm_run.seconds, 1e-9),
                          lsm_run.stats.points_decoded,
                          udf_run.stats.points_decoded)
    return table


def parallel_speedup(n_points=None, w=DEFAULT_W,
                     overlap_pct=DEFAULT_OVERLAP, parallelism=4,
                     repeats=1, datasets=DATASETS):
    """E12 — serial vs parallel chunk pipeline, per dataset and operator.

    Runs the same query against two engines over identical data — one
    with ``parallelism=1``, one with the requested worker count — and
    reports the wall-clock of both plus whether the results are exactly
    equal (they must be: the pipeline's ordered fan-out is a pure
    reordering of I/O, not of the merge).
    """
    tables = []
    for dataset in datasets:
        table = BenchTable(
            "Parallel pipeline (%s): serial vs %d workers"
            % (dataset, parallelism),
            ["operator", "serial (s)", "parallel (s)", "speedup",
             "identical"])
        with prepare_engine(dataset, n_points=n_points,
                            overlap_pct=overlap_pct) as serial, \
                prepare_engine(dataset, n_points=n_points,
                               overlap_pct=overlap_pct,
                               parallelism=parallelism) as parallel:
            for kind in ("m4udf", "m4lsm"):
                serial_run = timed_query(make_operator(serial, kind),
                                         serial, w, repeats=repeats)
                parallel_run = timed_query(make_operator(parallel, kind),
                                           parallel, w, repeats=repeats)
                table.add_row(
                    kind, serial_run.seconds, parallel_run.seconds,
                    serial_run.seconds / max(parallel_run.seconds, 1e-9),
                    serial_run.result == parallel_run.result)
        tables.append(table)
    return tables


def tile_cache_speedup(n_points=None, w=512, overlap_pct=DEFAULT_OVERLAP,
                       delete_pct=DEFAULT_DELETE_PCT,
                       cache_bytes=64 * 1024 * 1024, seed=7,
                       datasets=("BallSpeed", "KOB")):
    """E15 — M4 tile cache on a warmed pan/zoom session trace.

    Replays one seeded dashboard session (overview, zooms, pans, zoom
    out — :func:`repro.server.workload.zoom_pan_session`), with every
    viewport snapped to the power-of-two span grid the cache indexes
    by, three times over the same engine:

    * ``uncached`` — the plain M4-LSM operator (the baseline every
      other experiment measures);
    * ``tiled cold`` — the tile-cache operator against an empty cache
      (pays tile computation, but later viewports already reuse tiles
      the earlier ones planted);
    * ``tiled warm`` — the same trace again, fully warmed: interior
      tiles are all hits and only the two partial edge runs per
      viewport are computed.

    Every viewport's three results must be byte-identical (the cache's
    correctness contract); the warmed pass's p50 is the acceptance
    number (>= 2x over uncached).
    """
    import random

    from ..server.workload import zoom_pan_session
    from ..core.tiles import snap_viewport

    def p50(latencies):
        return sorted(latencies)[len(latencies) // 2]

    tables = []
    for dataset in datasets:
        table = BenchTable(
            "Tile cache (%s): pan/zoom session, w=%d, %d MiB budget"
            % (dataset, w, cache_bytes // (1024 * 1024)),
            ["pass", "viewports", "p50 (s)", "total (s)", "p50 speedup",
             "tile hits", "tile misses", "identical"])
        with prepare_engine(dataset, n_points=n_points,
                            overlap_pct=overlap_pct,
                            delete_pct=delete_pct,
                            tile_cache_bytes=cache_bytes) as prepared:
            plain = make_operator(prepared, "m4lsm")
            tiled = make_operator(prepared, "m4lsm-tiles")
            rng = random.Random(seed)
            viewports = [
                snap_viewport(start, end, w) for start, end in
                zoom_pan_session(prepared.t_qs, prepared.t_qe, rng)]
            metrics = prepared.engine.metrics

            def replay(operator):
                hits0 = metrics.counter("tile_cache_hits_total").value
                miss0 = metrics.counter("tile_cache_misses_total").value
                latencies, results = [], []
                for start, end in viewports:
                    started = time.perf_counter()
                    results.append(
                        operator.query(prepared.series, start, end, w))
                    latencies.append(time.perf_counter() - started)
                hits = metrics.counter("tile_cache_hits_total").value
                misses = metrics.counter("tile_cache_misses_total").value
                return latencies, results, hits - hits0, misses - miss0

            base_lat, base_res, _, _ = replay(plain)
            cold_lat, cold_res, cold_hits, cold_miss = replay(tiled)
            warm_lat, warm_res, warm_hits, warm_miss = replay(tiled)
            base_p50 = p50(base_lat)
            for label, lat, res, hits, misses in (
                    ("uncached", base_lat, base_res, 0, 0),
                    ("tiled cold", cold_lat, cold_res, cold_hits,
                     cold_miss),
                    ("tiled warm", warm_lat, warm_res, warm_hits,
                     warm_miss)):
                table.add_row(
                    label, len(viewports), p50(lat), sum(lat),
                    base_p50 / max(p50(lat), 1e-9), hits, misses,
                    all(a == b for a, b in zip(base_res, res)))
        tables.append(table)
    return tables


def ablation_index(n_points=None, w=DEFAULT_W, overlap_pct=30, repeats=1,
                   datasets=("MF03", "KOB")):
    """E10 — step regression index vs binary-search fallback."""
    tables = []
    for dataset in datasets:
        table = BenchTable("Ablation (%s): chunk index" % dataset,
                           ["index", "M4-LSM (s)", "pages decoded",
                            "index lookups"])
        with prepare_engine(dataset, n_points=n_points,
                            overlap_pct=overlap_pct,
                            points_per_page=100) as prepared:
            for label, use_regression in (("step regression", True),
                                          ("binary search", False)):
                lsm = make_operator(prepared, "m4lsm",
                                    use_regression=use_regression)
                run = timed_query(lsm, prepared, w, repeats=repeats)
                table.add_row(label, run.seconds, run.stats.pages_decoded,
                              run.stats.index_lookups)
        tables.append(table)
    return tables


def ablation_lazy(n_points=None, w=DEFAULT_W, overlap_pct=30,
                  delete_pct=20, repeats=1, datasets=("MF03", "KOB")):
    """E11 — lazy loading vs eager reloading of invalidated chunks."""
    tables = []
    for dataset in datasets:
        table = BenchTable("Ablation (%s): lazy loading" % dataset,
                           ["strategy", "M4-LSM (s)", "chunk loads",
                            "points decoded"])
        with prepare_engine(dataset, n_points=n_points,
                            overlap_pct=overlap_pct,
                            delete_pct=delete_pct) as prepared:
            for label, lazy in (("lazy", True), ("eager", False)):
                lsm = make_operator(prepared, "m4lsm", lazy=lazy)
                run = timed_query(lsm, prepared, w, repeats=repeats)
                table.add_row(label, run.seconds, run.stats.chunk_loads,
                              run.stats.points_decoded)
        tables.append(table)
    return tables


def durability_overhead(n_points=None, w=DEFAULT_W, repeats=5,
                        datasets=("BallSpeed", "KOB")):
    """E14 — the durability tax: page-CRC verification cost on reads.

    The write path always checksums; what a deployment pays per query
    is the read-side verify.  This runs the two read shapes — a full
    merged read (every page decoded) and the M4-LSM reduction (only
    the pages the solver touches) — with ``verify_checksums`` on and
    off, in two regimes:

    * ``cold``: the reader pool is drained before every run, so each
      query re-verifies every payload it touches — the worst case and
      the true hashing tax (target < 5%);
    * ``warm``: pooled readers survive across runs, so the
      verify-once-per-reader cache absorbs the CRC after the first
      query — the steady state a server actually lives in (~0%).

    Both regimes take the best of ``repeats`` runs and must return
    results identical to the unverified mode.
    """
    tables = []
    for dataset in datasets:
        table = BenchTable(
            "Durability overhead (%s): read-side CRC verification"
            % dataset,
            ["path", "regime", "verify on (s)", "verify off (s)",
             "overhead", "equal"])
        with prepare_engine(dataset, n_points=n_points) as prepared:
            engine = prepared.engine

            def _drain():
                # Pooled readers capture the verify flag (and their
                # verified-payload cache) at construction: drain the
                # pool so the next query starts from scratch.
                for reader in list(engine._readers.values()):
                    reader.close()
                engine._readers.clear()

            def _one(kind):
                if kind == "full-read":
                    operator = make_operator(prepared, "m4udf")
                    started = time.perf_counter()
                    result = operator.merged_series(
                        prepared.series, prepared.t_qs, prepared.t_qe)
                    return time.perf_counter() - started, result
                operator = make_operator(prepared, "m4lsm")
                run = timed_query(operator, prepared, w, repeats=1)
                return run.seconds, run.result

            def _timed(kind, verify, cold):
                engine.config.verify_checksums = verify
                _drain()
                best = float("inf")
                result = None
                for _ in range(repeats):
                    if cold:
                        _drain()
                    seconds, result = _one(kind)
                    best = min(best, seconds)
                return best, result

            def _equal(kind, a, b):
                if kind == "full-read":
                    return (np.array_equal(a.timestamps, b.timestamps)
                            and np.array_equal(a.values, b.values))
                return a == b

            try:
                for kind in ("full-read", "m4-lsm"):
                    for regime in ("cold", "warm"):
                        on_s, on_result = _timed(kind, True,
                                                 regime == "cold")
                        off_s, off_result = _timed(kind, False,
                                                   regime == "cold")
                        table.add_row(kind, regime, on_s, off_s,
                                      (on_s - off_s) / off_s,
                                      _equal(kind, on_result, off_result))
            finally:
                engine.config.verify_checksums = True
                _drain()
        tables.append(table)
    return tables


def server_throughput(n_points=20_000, users=(1, 4, 16, 64), width=256,
                      duration=1.0, timeout_ms=1000, workers=4,
                      queue_depth=8, overload_factor=4.0,
                      datasets=("BallSpeed", "KOB")):
    """E13 — serving capacity: closed-loop user sweep + overload cell.

    Boots a real :mod:`repro.server` over each dataset and drives it
    with the pan/zoom session workload: one closed-loop cell per user
    count (capacity curve), then one open-loop overload cell.  The
    overload cell runs against a deliberately small serving shape
    (1 worker, queue of 4, same engine) at ``overload_factor`` x the
    measured single-user throughput — overload the *server* is certain
    to feel and the load generator is certain to sustain.  It is the
    serving design's acceptance check: the server must *shed* (503s,
    not unbounded queueing) while the latency of accepted requests
    stays bounded by the request deadline.
    """
    from ..server import ServerConfig, start_server
    from ..server.workload import SessionWorkload
    tables = []
    for dataset in datasets:
        table = BenchTable(
            "Server throughput (%s): %d workers, queue %d, "
            "deadline %dms (overload cell: 1 worker, queue 4)"
            % (dataset, workers, queue_depth, timeout_ms),
            ["mode", "users", "rate (req/s)", "total", "ok", "shed",
             "timeout", "throughput (req/s)", "p50 (s)", "p95 (s)",
             "p99 (s)", "shed rate"])
        with prepare_engine(dataset, n_points=n_points) as prepared:
            handle = start_server(
                prepared.engine,
                ServerConfig(port=0, quiet=True, workers=workers,
                             queue_depth=queue_depth))
            try:
                single_user = 0.0
                for n_users in users:
                    workload = SessionWorkload(handle.url, width=width,
                                               seed=n_users,
                                               timeout_ms=timeout_ms)
                    report = workload.run_closed(users=n_users,
                                                 duration=duration)
                    if n_users == min(users):
                        single_user = report.throughput
                    _add_workload_row(table, report)
            finally:
                handle.stop()
            small = start_server(
                prepared.engine,
                ServerConfig(port=0, quiet=True, workers=1,
                             queue_depth=4))
            try:
                rate = max(overload_factor * single_user, 50.0)
                overload = SessionWorkload(small.url, width=width,
                                           seed=0, timeout_ms=timeout_ms)
                report = overload.run_open(rate, duration=duration,
                                           users=0)
                _add_workload_row(table, report)
            finally:
                small.stop()
        tables.append(table)
    return tables


def _add_workload_row(table, report):
    table.add_row(report.mode, report.users,
                  report.rate if report.rate else "-",
                  report.total, report.ok, report.shed, report.timeouts,
                  report.throughput, report.percentile(0.50),
                  report.percentile(0.95), report.percentile(0.99),
                  report.shed_rate)
