"""Versioned schema for the ``benchmarks/BENCH_*.json`` artifacts.

Every persisted benchmark result is one JSON document::

    {
      "schema": "repro-bench/1",
      "kind": "matrix" | "parallelism" | "server" | "durability"
              | "tiles" | "replication" | "shards",
      "meta":  { git_sha, python, platform, machine, cpu_count,
                 machine_id, points, repeats, created_unix, ... },
      "rows":  [ {...}, ... ]          # kind-specific row fields
    }

The schema exists so that artifacts written by different PRs stay
comparable: :func:`load_artifact` refuses anything it cannot gate on
with a one-line error (the contract ``repro bench --check`` and the
EXPERIMENTS.md generator rely on), and :func:`write_artifact` makes it
impossible to persist an invalid document in the first place.

Validation is deliberately hand-rolled (stdlib only, no ``jsonschema``
dependency): a table of required per-kind row fields plus type checks,
raising :class:`SchemaError` whose message always fits on one line.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import time

from ..errors import ReproError

#: Current artifact schema version.  Bump only with a converter.
SCHEMA_VERSION = "repro-bench/1"

_NUM = (int, float)

#: Required meta fields and their types.
META_FIELDS = {
    "git_sha": str,
    "python": str,
    "platform": str,
    "machine": str,
    "cpu_count": int,
    "machine_id": str,
    "points": int,
    "created_unix": _NUM,
}

#: Required row fields per artifact kind.
ROW_FIELDS = {
    "matrix": {
        "id": str,
        "config": dict,
        "gate": bool,
        "repeats": int,
        "wall": dict,
        "io": dict,
        "identity": dict,
    },
    "parallelism": {
        "experiment": str,
        "operator": str,
        "parallelism": int,
        "serial_seconds": _NUM,
        "parallel_seconds": _NUM,
        "speedup": _NUM,
        "identical": bool,
    },
    "server": {
        "experiment": str,
        "mode": str,
        "users": int,
        "total": int,
        "ok": int,
        "shed": int,
        "timeouts": int,
        "throughput": _NUM,
        "p50_seconds": _NUM,
        "p95_seconds": _NUM,
        "p99_seconds": _NUM,
        "shed_rate": _NUM,
    },
    "durability": {
        "experiment": str,
        "path": str,
        "regime": str,
        "verify_on_seconds": _NUM,
        "verify_off_seconds": _NUM,
        "overhead": _NUM,
    },
    "tiles": {
        "experiment": str,
        "pass": str,
        "viewports": int,
        "p50_seconds": _NUM,
        "total_seconds": _NUM,
        "p50_speedup": _NUM,
        "tile_hits": int,
        "tile_misses": int,
        "identical": bool,
    },
    "shards": {
        "experiment": str,
        "shards": int,
        "mode": str,
        "users": int,
        "total": int,
        "ok": int,
        "throughput": _NUM,
        "p50_seconds": _NUM,
        "p95_seconds": _NUM,
        "speedup_vs_1": _NUM,
        "identical": bool,
    },
    "replication": {
        "experiment": str,
        "scenario": str,
        "ack_mode": str,
        "rate_points_per_s": _NUM,
        "points": int,
        "achieved_points_per_s": _NUM,
        "lag_records_p95": _NUM,
        "final_lag_records": _NUM,
        "catchup_seconds": _NUM,
        "recovery_seconds": _NUM,
        "identical": bool,
    },
}

#: Required fields inside a matrix row's ``wall`` object.
WALL_FIELDS = {"p50_seconds": _NUM, "p99_seconds": _NUM, "samples": list}

#: Required fields inside a matrix row's ``identity`` object.
IDENTITY_FIELDS = {"checked": bool, "equal": bool}


class SchemaError(ReproError):
    """An artifact that cannot be trusted by the gate (one-line msg)."""


def _fail(path, message):
    prefix = "%s: " % path if path else ""
    raise SchemaError("%sinvalid bench artifact: %s" % (prefix, message))


def _check_fields(obj, spec, where, path):
    for name, types in spec.items():
        if name not in obj:
            _fail(path, "%s is missing required field %r" % (where, name))
        value = obj[name]
        # bool is an int subclass; never accept it where a number is due.
        if types is int and isinstance(value, bool):
            _fail(path, "%s field %r must be int, got bool" % (where, name))
        if types is _NUM and isinstance(value, bool):
            _fail(path, "%s field %r must be a number, got bool"
                  % (where, name))
        if not isinstance(value, types):
            _fail(path, "%s field %r must be %s, got %s"
                  % (where, name,
                     getattr(types, "__name__", "a number"),
                     type(value).__name__))


def validate_artifact(doc, path=None):
    """Raise :class:`SchemaError` unless ``doc`` is a valid artifact.

    ``path`` only decorates the error message.  Returns ``doc`` so the
    call composes: ``rows = validate_artifact(doc)["rows"]``.
    """
    if not isinstance(doc, dict):
        _fail(path, "top level must be a JSON object")
    if "schema" not in doc:
        _fail(path, "missing 'schema' (pre-schema artifact? run "
                    "scripts/convert_bench_artifacts.py)")
    if doc["schema"] != SCHEMA_VERSION:
        _fail(path, "schema %r is not %r" % (doc["schema"], SCHEMA_VERSION))
    kind = doc.get("kind")
    if kind not in ROW_FIELDS:
        _fail(path, "kind %r is not one of %s"
              % (kind, "/".join(sorted(ROW_FIELDS))))
    meta = doc.get("meta")
    if not isinstance(meta, dict):
        _fail(path, "'meta' must be an object")
    _check_fields(meta, META_FIELDS, "meta", path)
    rows = doc.get("rows")
    if not isinstance(rows, list) or not rows:
        _fail(path, "'rows' must be a non-empty list")
    for i, row in enumerate(rows):
        if not isinstance(row, dict):
            _fail(path, "rows[%d] must be an object" % i)
        _check_fields(row, ROW_FIELDS[kind], "rows[%d]" % i, path)
        if kind == "matrix":
            _check_fields(row["wall"], WALL_FIELDS,
                          "rows[%d].wall" % i, path)
            _check_fields(row["identity"], IDENTITY_FIELDS,
                          "rows[%d].identity" % i, path)
            if not row["wall"]["samples"]:
                _fail(path, "rows[%d].wall.samples must be non-empty" % i)
    if kind == "matrix":
        ids = [row["id"] for row in rows]
        if len(set(ids)) != len(ids):
            _fail(path, "duplicate matrix cell ids")
    return doc


def git_sha(cwd=None):
    """The repo's short commit sha, or ``"unknown"`` outside git."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=cwd or os.path.dirname(os.path.abspath(__file__)),
            capture_output=True, text=True, timeout=10)
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    return out.stdout.strip() if out.returncode == 0 else "unknown"


def machine_id():
    """A coarse machine fingerprint for wall-clock comparability.

    Two artifacts with different ids were measured on substrates whose
    wall clocks cannot be compared; the gate then trusts I/O counters
    only (see :mod:`repro.bench.compare`).
    """
    return "%s/py%s/%dcpu" % (platform.machine(),
                              ".".join(platform.python_version_tuple()[:2]),
                              os.cpu_count() or 1)


def artifact_meta(points, **extra):
    """A fresh ``meta`` object describing this run's substrate."""
    meta = {
        "git_sha": git_sha(),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count() or 1,
        "machine_id": machine_id(),
        "points": int(points),
        "created_unix": time.time(),
    }
    meta.update(extra)
    return meta


def new_artifact(kind, rows, points, **meta_extra):
    """Assemble and validate a fresh artifact document."""
    return validate_artifact({
        "schema": SCHEMA_VERSION,
        "kind": kind,
        "meta": artifact_meta(points, **meta_extra),
        "rows": list(rows),
    })


def load_artifact(path, kind=None):
    """Read + validate an artifact; one-line errors on any problem."""
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except OSError as exc:
        raise SchemaError("cannot read bench artifact %s: %s"
                          % (path, exc)) from exc
    except ValueError as exc:
        raise SchemaError("%s: invalid bench artifact: not JSON (%s)"
                          % (path, exc)) from exc
    validate_artifact(doc, path=path)
    if kind is not None and doc["kind"] != kind:
        raise SchemaError("%s: invalid bench artifact: kind %r, "
                          "expected %r" % (path, doc["kind"], kind))
    return doc


def write_artifact(path, doc):
    """Validate then persist ``doc`` as stable, diff-friendly JSON."""
    validate_artifact(doc, path=path)
    with open(path, "w", encoding="utf-8") as f:
        json.dump(doc, f, indent=2, sort_keys=True)
        f.write("\n")
    return path
