"""E18 — replication lag vs ingest rate, and failover recovery time.

Boots real primary/standby server pairs (stdlib HTTP, in-process) and
measures the two numbers the hot-standby design promises:

* **lag** — at each target ingest rate a paced open-loop stream runs
  for a fixed window with ``ack_mode="queued"`` (the shipper trails
  the writer, so lag can actually accumulate), sampling the shipper's
  record lag after every batch; one extra cell repeats the lowest rate
  with ``ack_mode="replicated"``, where every ack waits for the ship.
  After the stream, the time for the shipper to drain back to zero lag
  (``catchup``) is measured, and the standby's content fingerprint
  must equal the primary's — replication is a correctness mechanism
  first, so every cell carries the identity check.
* **failover** — a replicated-ack pair with a short lease loses its
  primary (listener hard-closed, shipper stopped: silence, exactly
  what a SIGKILL looks like from the standby); recovery time is the
  span from the kill until the auto-promoted standby both reports
  ``role="primary"`` and accepts a write.
"""

from __future__ import annotations

import math
import pathlib
import shutil
import socket
import tempfile
import time

from .report import BenchTable

#: Points per ingest batch in every cell.
BATCH = 200


def _free_port():
    sock = socket.socket()
    sock.bind(("127.0.0.1", 0))
    port = sock.getsockname()[1]
    sock.close()
    return port


def _p95(values):
    if not values:
        return 0.0
    ordered = sorted(values)
    return float(ordered[min(len(ordered) - 1,
                             int(0.95 * len(ordered)))])


class _Pair:
    """A replicating primary/standby pair of live in-process servers."""

    def __init__(self, root, ack_mode="queued", auto_promote=False,
                 lease_seconds=5.0):
        from ..server import ReproClient, ServerConfig, start_server
        from ..storage import StorageConfig, StorageEngine

        standby_port, primary_port = _free_port(), _free_port()
        self.standby_url = "http://127.0.0.1:%d" % standby_port
        self.primary_url = "http://127.0.0.1:%d" % primary_port

        def config():
            return StorageConfig(avg_series_point_number_threshold=4096)

        self.standby_engine = StorageEngine(
            pathlib.Path(root) / "standby", config())
        self.standby = start_server(self.standby_engine, ServerConfig(
            port=standby_port, quiet=True, standby=True,
            advertise_url=self.standby_url, auto_promote=auto_promote,
            lease_seconds=lease_seconds, node_id="bench-standby"))
        self.primary_engine = StorageEngine(
            pathlib.Path(root) / "primary", config())
        self.primary = start_server(self.primary_engine, ServerConfig(
            port=primary_port, quiet=True,
            replicate_to=(self.standby_url,),
            advertise_url=self.primary_url, ingest_ack=ack_mode,
            lease_seconds=lease_seconds, node_id="bench-primary"))
        self.client = ReproClient(self.primary_url)
        self.standby_client = ReproClient(self.standby_url)

    def lag_records(self):
        status = self.primary.service.replication.status()
        return int(status["replicas"][0]["lag_records"])

    def close(self):
        for handle in (self.primary, self.standby):
            try:
                handle.stop()
            except Exception:
                pass
        for engine in (self.primary_engine, self.standby_engine):
            try:
                engine.close()
            except Exception:
                pass


def _batch(k):
    t0 = k * BATCH
    timestamps = list(range(t0, t0 + BATCH))
    return timestamps, [math.sin(t / 9.0) for t in timestamps]


def _lag_cell(root, rate, ack_mode, duration):
    from ..replication.antientropy import content_fingerprint

    pair = _Pair(root, ack_mode=ack_mode)
    try:
        interval = BATCH / float(rate)
        samples = []
        sent = 0
        k = 0
        start = time.monotonic()
        next_send = start
        while time.monotonic() - start < duration:
            timestamps, values = _batch(k)
            pair.client.ingest("s", timestamps, values)
            sent += BATCH
            k += 1
            samples.append(pair.lag_records())
            next_send += interval
            delay = next_send - time.monotonic()
            if delay > 0:
                time.sleep(delay)
        elapsed = time.monotonic() - start

        drain_start = time.monotonic()
        while pair.lag_records() > 0 \
                and time.monotonic() - drain_start < 30.0:
            time.sleep(0.005)
        catchup = time.monotonic() - drain_start
        final_lag = pair.lag_records()
        identical = content_fingerprint(pair.standby_engine) \
            == content_fingerprint(pair.primary_engine)
        return {
            "scenario": "lag",
            "ack_mode": ack_mode,
            "rate_points_per_s": float(rate),
            "points": sent,
            "achieved_points_per_s": sent / elapsed if elapsed else 0.0,
            "lag_records_p95": _p95(samples),
            "final_lag_records": float(final_lag),
            "catchup_seconds": catchup,
            "recovery_seconds": 0.0,
            "identical": identical,
        }
    finally:
        pair.close()


def _failover_cell(root, lease_seconds, n_batches=5, timeout=30.0):
    from ..core import M4UDFOperator

    pair = _Pair(root, ack_mode="replicated", auto_promote=True,
                 lease_seconds=lease_seconds)
    try:
        for k in range(n_batches):
            timestamps, values = _batch(k)
            ack = pair.client.ingest("s", timestamps, values)
            assert ack["durability"] == "replicated"
        sent = n_batches * BATCH

        killed = time.monotonic()
        # Silence the primary the way a SIGKILL would: hard-close the
        # listener and stop the shipper (no drain, no goodbye).
        pair.primary._server.shutdown()
        pair.primary._server.server_close()
        pair.primary.service.replication.stop()
        while time.monotonic() - killed < timeout:
            status = pair.standby_client.replication_status()
            if status["role"] == "primary":
                break
            time.sleep(0.01)
        # Recovered means writable, not just self-declared primary.
        ack = pair.standby_client.ingest("s", [sent + 10], [1.0])
        recovery = time.monotonic() - killed
        assert ack["accepted"] == 1

        pair.standby_engine.flush_all()
        series = M4UDFOperator(pair.standby_engine, degraded=False) \
            .merged_series("s", 0, sent + 11)
        identical = len(series.timestamps) == sent + 1
        return {
            "scenario": "failover",
            "ack_mode": "replicated",
            "rate_points_per_s": 0.0,
            "points": sent,
            "achieved_points_per_s": 0.0,
            "lag_records_p95": 0.0,
            "final_lag_records": 0.0,
            "catchup_seconds": 0.0,
            "recovery_seconds": recovery,
            "identical": identical,
        }
    finally:
        pair.close()


def replication_lag_and_failover(rates=(2_000, 8_000, 32_000),
                                 duration=1.5, lease_seconds=0.5):
    """E18: one lag cell per target rate (+ a replicated-ack cell at
    the lowest rate), then the failover-recovery cell."""
    table = BenchTable(
        "Replication: lag vs ingest rate (batch %d) + failover "
        "recovery (lease %.1fs)" % (BATCH, lease_seconds),
        ["scenario", "ack", "rate (pts/s)", "points",
         "achieved (pts/s)", "lag p95 (rec)", "final lag",
         "catchup (s)", "recovery (s)", "identical"])
    root = pathlib.Path(tempfile.mkdtemp(prefix="repro-bench-repl-"))
    rows = []
    try:
        for k, rate in enumerate(rates):
            rows.append(_lag_cell(root / ("lag-%d" % k), rate,
                                  "queued", duration))
        rows.append(_lag_cell(root / "lag-replicated", min(rates),
                              "replicated", duration))
        rows.append(_failover_cell(root / "failover", lease_seconds))
    finally:
        shutil.rmtree(root, ignore_errors=True)
    for row in rows:
        table.add_row(row["scenario"], row["ack_mode"],
                      row["rate_points_per_s"], row["points"],
                      row["achieved_points_per_s"],
                      row["lag_records_p95"], row["final_lag_records"],
                      row["catchup_seconds"], row["recovery_seconds"],
                      row["identical"])
    return [table], rows
