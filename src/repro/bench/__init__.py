"""Benchmark harness: engine preparation, timed sweeps, result tables."""

from .experiments import (
    DATASETS,
    ablation_index,
    ablation_lazy,
    durability_overhead,
    fig1_pixel_accuracy,
    fig8_9_step_regression,
    fig10_vary_w,
    fig11_vary_range,
    fig12_vary_overlap,
    fig13_vary_delete_pct,
    fig14_vary_delete_range,
    headline_scaling,
    parallel_speedup,
    server_throughput,
    table2_datasets,
)
from .harness import (
    PreparedEngine,
    QueryTiming,
    bench_points,
    make_operator,
    prepare_engine,
    timed_query,
)
from .report import BenchTable, monotone_non_decreasing, roughly_constant

__all__ = [
    "BenchTable",
    "DATASETS",
    "PreparedEngine",
    "QueryTiming",
    "ablation_index",
    "ablation_lazy",
    "bench_points",
    "durability_overhead",
    "fig1_pixel_accuracy",
    "fig8_9_step_regression",
    "fig10_vary_w",
    "fig11_vary_range",
    "fig12_vary_overlap",
    "fig13_vary_delete_pct",
    "fig14_vary_delete_range",
    "headline_scaling",
    "make_operator",
    "monotone_non_decreasing",
    "parallel_speedup",
    "prepare_engine",
    "roughly_constant",
    "server_throughput",
    "table2_datasets",
]
