"""Hierarchical span tracing with attached counter deltas.

A :class:`Tracer` produces nested :class:`Span` objects through a
context manager::

    with tracer.span("flush", series="root.sg.speed"):
        with tracer.span("flush.seal_chunk", points=1000):
            ...

Every span records wall-clock duration *and* the delta of the engine's
:class:`~repro.storage.iostats.IoStats` counters over its lifetime —
the substrate-independent cost signal the paper's figures are built
from.  The most recent completed root span is kept on
``tracer.last_root`` so callers (``repro query --explain``, tests) can
inspect the tree after the fact.

Span durations also feed the registry histogram
``repro_span_seconds{span=...}``, which is how ``repro stats`` shows
p50/p95/p99 per operation without any extra bookkeeping at call sites.

The generalization story: the M4-LSM-only
:class:`repro.core.m4lsm.tracing.QueryTrace` records *per-span-of-w*
solver detail; this tracer records *per-operation* structure for every
engine code path (writes, flushes, WAL, compaction, recovery, both
operators).  The two compose — an EXPLAIN prints both.
"""

from __future__ import annotations

import threading
import time


class Span:
    """One node of a trace tree (also its own context manager)."""

    __slots__ = ("name", "attrs", "parent", "children", "started",
                 "ended", "counters", "_tracer", "_io_before")

    def __init__(self, tracer, name, attrs):
        self.name = name
        self.attrs = attrs
        self.parent = None
        self.children = []
        self.started = None
        self.ended = None
        self.counters = {}
        self._tracer = tracer
        self._io_before = None

    # -- context manager ----------------------------------------------------------

    def __enter__(self):
        tracer = self._tracer
        self.parent = tracer.current()
        if self.parent is not None:
            self.parent.children.append(self)
        tracer._set_current(self)
        if tracer._stats is not None:
            self._io_before = tracer._stats.snapshot()
        self.started = time.perf_counter()
        return self

    def __exit__(self, *exc_info):
        self.ended = time.perf_counter()
        tracer = self._tracer
        if self._io_before is not None:
            diff = tracer._stats.diff(self._io_before)
            self.counters = {k: v for k, v in diff.as_dict().items() if v}
            self._io_before = None
        tracer._set_current(self.parent)
        if self.parent is None:
            tracer.last_root = self
        tracer._registry.histogram("repro_span_seconds",
                                   span=self.name).observe(self.duration)
        return False

    # -- inspection ---------------------------------------------------------------

    @property
    def duration(self):
        """Wall-clock seconds (0.0 while still open)."""
        if self.started is None or self.ended is None:
            return 0.0
        return self.ended - self.started

    def walk(self):
        """Yield this span then every descendant, depth first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name):
        """First span named ``name`` in this subtree, or None."""
        for span in self.walk():
            if span.name == name:
                return span
        return None

    def find_all(self, name):
        """Every span named ``name`` in this subtree."""
        return [span for span in self.walk() if span.name == name]

    def to_dict(self):
        """JSON-able recursive dump."""
        return {
            "name": self.name,
            "seconds": self.duration,
            "attrs": dict(self.attrs),
            "counters": dict(self.counters),
            "children": [child.to_dict() for child in self.children],
        }

    def render(self, indent=0):
        """Human-readable tree, one line per span."""
        parts = ["%s%s  %.3f ms" % ("  " * indent, self.name,
                                    self.duration * 1e3)]
        if self.attrs:
            parts.append(" ".join("%s=%s" % (k, v)
                                  for k, v in sorted(self.attrs.items())))
        if self.counters:
            parts.append("[%s]" % " ".join(
                "%s=%d" % (k, v) for k, v in sorted(self.counters.items())))
        lines = ["  ".join(parts)]
        for child in self.children:
            lines.append(child.render(indent + 1))
        return "\n".join(lines)


class _NoopSpan:
    """Shared do-nothing span handed out by a disabled tracer."""

    __slots__ = ()
    name = ""
    parent = None
    children = ()
    counters = {}
    duration = 0.0

    @property
    def attrs(self):
        # A throwaway dict: callers may annotate, nothing is kept.
        return {}

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        return False

    def walk(self):
        return iter(())

    def find(self, name):
        return None

    def find_all(self, name):
        return []

    def to_dict(self):
        return {}

    def render(self, indent=0):
        return ""


_NOOP_SPAN = _NoopSpan()


class Tracer:
    """Factory and stack for :class:`Span` trees.

    Args:
        stats: an :class:`~repro.storage.iostats.IoStats` whose deltas
            are attached to every span (None disables counter capture).
        registry: a :class:`~repro.obs.metrics.MetricsRegistry` that
            receives per-span-name duration histograms.
        enabled: a disabled tracer hands out a shared no-op span, so
            instrumented code pays one attribute check and nothing else.
    """

    def __init__(self, stats=None, registry=None, enabled=True):
        from .metrics import NULL_REGISTRY
        self.enabled = enabled
        self._stats = stats
        self._registry = registry if registry is not None else NULL_REGISTRY
        # Per-thread span stacks: concurrent queries each build their own
        # tree; ``last_root`` is the most recent completed root from any
        # thread (last-writer-wins, which is what EXPLAIN wants).
        self._local = threading.local()
        self.last_root = None

    def span(self, name, **attrs):
        """A new child span of the currently open one (context manager)."""
        if not self.enabled:
            return _NOOP_SPAN
        return Span(self, name, attrs)

    def current(self):
        """The innermost span open *on this thread*, or None."""
        return getattr(self._local, "current", None)

    def _set_current(self, span):
        self._local.current = span


#: A tracer that records nothing; safe default for optional hooks.
NULL_TRACER = Tracer(enabled=False)


def tracer_of(engine):
    """``engine.tracer`` when present, else the no-op tracer.

    Lets operators instrument unconditionally while still accepting
    engine stand-ins (tests, ablation harnesses) that predate obs.
    """
    tracer = getattr(engine, "tracer", None)
    return tracer if tracer is not None else NULL_TRACER
