"""Hierarchical span tracing with attached counter deltas.

A :class:`Tracer` produces nested :class:`Span` objects through a
context manager::

    with tracer.span("flush", series="root.sg.speed"):
        with tracer.span("flush.seal_chunk", points=1000):
            ...

Every span records wall-clock duration *and* the delta of the engine's
:class:`~repro.storage.iostats.IoStats` counters over its lifetime —
the substrate-independent cost signal the paper's figures are built
from.  The most recent completed root span is kept on
``tracer.last_root`` so callers (``repro query --explain``, tests) can
inspect the tree after the fact.

Span durations also feed the registry histogram
``repro_span_seconds{span=...}``, which is how ``repro stats`` shows
p50/p95/p99 per operation without any extra bookkeeping at call sites.

Cross-thread propagation
------------------------

The open-span stack is a *module-level* thread-local, so a span started
on one thread can be re-rooted onto another: the admission worker pool
wraps each job in :func:`activate` with the request's root span, and
every engine span the job produces lands in that request's tree instead
of dying at the thread boundary.  The same mechanism carries the trace
into the chunk pipeline's worker threads (see
``ChunkPipeline.map_ordered``).

Three helpers keep the cost of that machinery off the fast path:

* :func:`current_span` — the innermost open span on this thread;
* :func:`activate` — context manager installing a span as the thread's
  current one (how worker threads join a request's tree);
* :func:`ambient_span` — a child of the current span *only when the
  trace asked for detail* (request-scoped traces do; plain engine
  spans do not), so per-chunk / per-tile instrumentation is free for
  ordinary queries;
* :func:`attach_timed` — attach an already-measured interval (lock
  waits, queue waits) to the current trace without a context manager.

The generalization story: the M4-LSM-only
:class:`repro.core.m4lsm.tracing.QueryTrace` records *per-span-of-w*
solver detail; this tracer records *per-operation* structure for every
engine code path (writes, flushes, WAL, compaction, recovery, both
operators).  The two compose — an EXPLAIN prints both.
"""

from __future__ import annotations

import threading
import time

# The open-span stack: one `current` span per thread, shared by every
# tracer in the process so spans can hop threads (admission workers,
# chunk pipeline) via activate().
_local = threading.local()


def current_span():
    """The innermost span open on this thread (any tracer), or None."""
    return getattr(_local, "current", None)


class Span:
    """One node of a trace tree (also its own context manager)."""

    __slots__ = ("name", "attrs", "parent", "children", "started",
                 "ended", "counters", "thread", "detailed", "_tracer",
                 "_io_before", "_prev")

    def __init__(self, tracer, name, attrs, detailed=False):
        self.name = name
        self.attrs = attrs
        self.parent = None
        self.children = []
        self.started = None
        self.ended = None
        self.counters = {}
        self.thread = None
        self.detailed = detailed
        self._tracer = tracer
        self._io_before = None
        self._prev = None

    # -- context manager ----------------------------------------------------------

    def __enter__(self):
        tracer = self._tracer
        current = getattr(_local, "current", None)
        # Only nest under a span of the *same* tracer; a span from
        # another engine's tracer is invisible (each engine keeps its
        # own trees, even when interleaved on one thread).
        if current is not None and current._tracer is tracer:
            self.parent = current
            self.parent.children.append(self)
            self.detailed = self.detailed or current.detailed
        self._prev = current
        _local.current = self
        self.thread = threading.current_thread().name
        if tracer._stats is not None:
            self._io_before = tracer._stats.snapshot()
        self.started = time.perf_counter()
        return self

    def __exit__(self, *exc_info):
        self.ended = time.perf_counter()
        tracer = self._tracer
        if self._io_before is not None:
            diff = tracer._stats.diff(self._io_before)
            self.counters = {k: v for k, v in diff.as_dict().items() if v}
            self._io_before = None
        _local.current = self._prev
        self._prev = None
        if self.parent is None:
            tracer.last_root = self
        tracer._registry.histogram("repro_span_seconds",
                                   span=self.name).observe(self.duration)
        return False

    # -- inspection ---------------------------------------------------------------

    @property
    def duration(self):
        """Wall-clock seconds (0.0 while still open)."""
        if self.started is None or self.ended is None:
            return 0.0
        return self.ended - self.started

    def walk(self):
        """Yield this span then every descendant, depth first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name):
        """First span named ``name`` in this subtree, or None."""
        for span in self.walk():
            if span.name == name:
                return span
        return None

    def find_all(self, name):
        """Every span named ``name`` in this subtree."""
        return [span for span in self.walk() if span.name == name]

    def to_dict(self):
        """JSON-able recursive dump (perf_counter timestamps included,
        so exporters can reconstruct the timeline)."""
        return {
            "name": self.name,
            "seconds": self.duration,
            "started": self.started,
            "ended": self.ended,
            "thread": self.thread,
            "attrs": dict(self.attrs),
            "counters": dict(self.counters),
            "children": [child.to_dict() for child in self.children],
        }

    def render(self, indent=0):
        """Human-readable tree, one line per span."""
        parts = ["%s%s  %.3f ms" % ("  " * indent, self.name,
                                    self.duration * 1e3)]
        if self.attrs:
            parts.append(" ".join("%s=%s" % (k, v)
                                  for k, v in sorted(self.attrs.items())))
        if self.counters:
            parts.append("[%s]" % " ".join(
                "%s=%d" % (k, v) for k, v in sorted(self.counters.items())))
        lines = ["  ".join(parts)]
        for child in self.children:
            lines.append(child.render(indent + 1))
        return "\n".join(lines)


class _NoopSpan:
    """Shared do-nothing span handed out by a disabled tracer."""

    __slots__ = ()
    name = ""
    parent = None
    children = ()
    counters = {}
    duration = 0.0
    started = None
    ended = None
    thread = None
    detailed = False

    @property
    def attrs(self):
        # A throwaway dict: callers may annotate, nothing is kept.
        return {}

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        return False

    def walk(self):
        return iter(())

    def find(self, name):
        return None

    def find_all(self, name):
        return []

    def to_dict(self):
        return {}

    def render(self, indent=0):
        return ""


_NOOP_SPAN = _NoopSpan()


class Tracer:
    """Factory and stack for :class:`Span` trees.

    Args:
        stats: an :class:`~repro.storage.iostats.IoStats` whose deltas
            are attached to every span (None disables counter capture).
        registry: a :class:`~repro.obs.metrics.MetricsRegistry` that
            receives per-span-name duration histograms.
        enabled: a disabled tracer hands out a shared no-op span, so
            instrumented code pays one attribute check and nothing else.
    """

    def __init__(self, stats=None, registry=None, enabled=True):
        from .metrics import NULL_REGISTRY
        self.enabled = enabled
        self._stats = stats
        self._registry = registry if registry is not None else NULL_REGISTRY
        self.last_root = None

    def span(self, name, **attrs):
        """A new child span of the currently open one (context manager)."""
        if not self.enabled:
            return _NOOP_SPAN
        return Span(self, name, attrs)

    def root_span(self, name, **attrs):
        """A *detailed* span for a request-scoped trace.

        Detail propagates to every descendant: :func:`ambient_span`
        call sites (per-chunk pipeline items, per-tile lookups) emit
        real spans only inside a detailed tree, so request traces get
        full depth while ordinary engine spans stay phase-granular.
        """
        if not self.enabled:
            return _NOOP_SPAN
        return Span(self, name, attrs, detailed=True)

    def timed_span(self, name, started, ended, parent=None, **attrs):
        """Attach an already-measured interval as a completed span.

        For costs measured across threads (admission queue wait, worker
        hand-off, lock waits) where enter/exit context management is
        impossible.  ``parent`` defaults to the thread's current span;
        with no parent the span is recorded in the duration histogram
        but belongs to no tree.
        """
        if not self.enabled:
            return _NOOP_SPAN
        span = Span(self, name, attrs)
        span.started = float(started)
        span.ended = float(ended)
        span.thread = threading.current_thread().name
        if parent is None:
            parent = self.current()
        if parent is not None and parent is not _NOOP_SPAN:
            span.parent = parent
            parent.children.append(span)
            span.detailed = parent.detailed
        self._registry.histogram("repro_span_seconds",
                                 span=name).observe(span.duration)
        return span

    def current(self):
        """The innermost span of *this tracer* open on this thread."""
        span = getattr(_local, "current", None)
        if span is not None and span._tracer is self:
            return span
        return None


class activate:
    """Context manager: make ``span`` the calling thread's current span.

    The cross-thread half of request tracing: a worker thread that
    executes on behalf of a request activates the request's root span,
    so every span the work produces nests under it.  ``None`` (or a
    no-op span) deactivates nothing and costs nothing.
    """

    __slots__ = ("_span", "_prev")

    def __init__(self, span):
        self._span = None if span is _NOOP_SPAN else span
        self._prev = None

    def __enter__(self):
        self._prev = getattr(_local, "current", None)
        if self._span is not None:
            _local.current = self._span
        return self._span

    def __exit__(self, *exc_info):
        _local.current = self._prev
        return False


def ambient_span(name, **attrs):
    """A child span of the thread's current span — detailed trees only.

    The hook for per-item instrumentation (chunk pipeline items, tile
    lookups): inside a request-scoped (:meth:`Tracer.root_span`) tree
    it creates a real span; under an ordinary engine span, or no span,
    it returns the shared no-op — one thread-local read and a flag
    check, nothing else.
    """
    current = getattr(_local, "current", None)
    if current is None or not current.detailed:
        return _NOOP_SPAN
    tracer = current._tracer
    if not tracer.enabled:
        return _NOOP_SPAN
    return Span(tracer, name, attrs)


def attach_timed(name, started, ended, **attrs):
    """Attach a measured interval to the thread's current trace, if any.

    Used by instrumentation that measures unconditionally (lock waits)
    but should only materialize spans when a trace is actually open.
    Returns the span, or None when no trace was active.
    """
    current = getattr(_local, "current", None)
    if current is None:
        return None
    tracer = current._tracer
    if not tracer.enabled:
        return None
    return tracer.timed_span(name, started, ended, parent=current, **attrs)


#: A tracer that records nothing; safe default for optional hooks.
NULL_TRACER = Tracer(enabled=False)


def tracer_of(engine):
    """``engine.tracer`` when present, else the no-op tracer.

    Lets operators instrument unconditionally while still accepting
    engine stand-ins (tests, ablation harnesses) that predate obs.
    """
    tracer = getattr(engine, "tracer", None)
    return tracer if tracer is not None else NULL_TRACER
