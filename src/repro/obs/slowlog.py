"""Rolling slow-query log for the Session/Executor layer.

Queries slower than a configurable threshold
(``StorageConfig.slow_query_seconds``) are appended to a bounded ring;
the newest entries survive, the oldest roll off.  Entries are plain
dicts so they serialize straight into the engine's persisted ``obs.json``
and print from ``repro stats``.
"""

from __future__ import annotations

import collections
import threading
import time


class SlowQueryLog:
    """A bounded ring of slow-query records (safe for concurrent use).

    Args:
        threshold_seconds: queries at or above this latency are kept;
            a non-positive threshold keeps everything (trace-all mode).
        capacity: ring size; the oldest entries are evicted first.
    """

    def __init__(self, threshold_seconds=1.0, capacity=128):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.threshold_seconds = float(threshold_seconds)
        self._lock = threading.Lock()
        self._entries = collections.deque(maxlen=int(capacity))

    def __len__(self):
        return len(self._entries)

    @property
    def capacity(self):
        """Maximum number of retained entries."""
        return self._entries.maxlen

    def record(self, statement, seconds, **info):
        """Log one query if it breaches the threshold.

        Returns the entry dict when recorded, else None.
        """
        if self.threshold_seconds > 0 and seconds < self.threshold_seconds:
            return None
        entry = {"statement": str(statement), "seconds": float(seconds),
                 "unix_time": time.time()}
        entry.update(info)
        with self._lock:
            self._entries.append(entry)
        return entry

    def entries(self):
        """Oldest-to-newest list of retained entries (copies)."""
        with self._lock:
            return [dict(entry) for entry in self._entries]

    def load(self, entries):
        """Seed the ring from persisted entries (oldest first)."""
        with self._lock:
            for entry in entries or []:
                if isinstance(entry, dict):
                    self._entries.append(dict(entry))

    def clear(self):
        """Drop every entry."""
        with self._lock:
            self._entries.clear()
