"""repro.obs — the engine-wide observability layer.

Three pieces, designed to stay on by default:

* :mod:`repro.obs.metrics` — named counters, gauges and fixed-bucket
  latency histograms behind a :class:`MetricsRegistry`;
* :mod:`repro.obs.tracer` — hierarchical spans with attached
  :class:`~repro.storage.iostats.IoStats` counter deltas, generalizing
  the M4-LSM-only :class:`~repro.core.m4lsm.tracing.QueryTrace` to the
  whole engine (writes, WAL, flush, compaction, recovery, both
  operators);
* :mod:`repro.obs.export` / :mod:`repro.obs.slowlog` — JSON and
  Prometheus text exporters plus a rolling slow-query log;
* :mod:`repro.obs.trace_store` — W3C ``traceparent`` propagation and a
  bounded ring of completed request traces with Chrome ``trace_event``
  export;
* :mod:`repro.obs.profiler` — a stdlib sampling wall-clock profiler
  emitting collapsed stacks (flamegraph.pl format).

See README.md § Observability for metric names and CLI usage.
"""

from .export import render_text, to_json, to_prometheus
from .metrics import (
    DEFAULT_LATENCY_BUCKETS,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .profiler import SamplingProfiler
from .slowlog import SlowQueryLog
from .trace_store import (
    TraceContext,
    TraceStore,
    make_traceparent,
    parse_traceparent,
    to_chrome_trace,
)
from .tracer import (
    NULL_TRACER,
    Span,
    Tracer,
    activate,
    ambient_span,
    attach_timed,
    current_span,
    tracer_of,
)

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "NULL_TRACER",
    "SamplingProfiler",
    "SlowQueryLog",
    "Span",
    "TraceContext",
    "TraceStore",
    "Tracer",
    "activate",
    "ambient_span",
    "attach_timed",
    "current_span",
    "make_traceparent",
    "parse_traceparent",
    "render_text",
    "to_chrome_trace",
    "to_json",
    "to_prometheus",
    "tracer_of",
]
