"""repro.obs — the engine-wide observability layer.

Three pieces, designed to stay on by default:

* :mod:`repro.obs.metrics` — named counters, gauges and fixed-bucket
  latency histograms behind a :class:`MetricsRegistry`;
* :mod:`repro.obs.tracer` — hierarchical spans with attached
  :class:`~repro.storage.iostats.IoStats` counter deltas, generalizing
  the M4-LSM-only :class:`~repro.core.m4lsm.tracing.QueryTrace` to the
  whole engine (writes, WAL, flush, compaction, recovery, both
  operators);
* :mod:`repro.obs.export` / :mod:`repro.obs.slowlog` — JSON and
  Prometheus text exporters plus a rolling slow-query log.

See README.md § Observability for metric names and CLI usage.
"""

from .export import render_text, to_json, to_prometheus
from .metrics import (
    DEFAULT_LATENCY_BUCKETS,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .slowlog import SlowQueryLog
from .tracer import NULL_TRACER, Span, Tracer, tracer_of

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "NULL_TRACER",
    "SlowQueryLog",
    "Span",
    "Tracer",
    "render_text",
    "to_json",
    "to_prometheus",
    "tracer_of",
]
