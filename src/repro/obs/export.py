"""Exporters: registry snapshots as JSON, Prometheus text, or terminal text.

All three operate on the *snapshot dict* produced by
:meth:`repro.obs.metrics.MetricsRegistry.snapshot` (optionally wrapped
in an engine observability snapshot), not on live registry objects —
so the same code serves a running engine and a persisted ``obs.json``
read back by ``repro stats``.
"""

from __future__ import annotations

import json
import math
import re

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")
_LABEL_RE = re.compile(r"[^a-zA-Z0-9_]")


def to_json(snapshot, indent=2):
    """The snapshot as pretty-printed JSON text."""
    return json.dumps(snapshot, indent=indent, sort_keys=True)


def _prom_name(name):
    """A valid Prometheus metric name (invalid chars become ``_``)."""
    name = _NAME_RE.sub("_", name)
    if not name or name[0].isdigit():
        name = "_" + name
    return name


def _prom_labels(labels, extra=None):
    """Rendered ``{k="v",...}`` block, or an empty string."""
    items = dict(labels or {})
    if extra:
        items.update(extra)
    if not items:
        return ""
    body = ",".join('%s="%s"' % (_LABEL_RE.sub("_", k),
                                 _escape(str(v)))
                    for k, v in sorted(items.items()))
    return "{%s}" % body


def _escape(value):
    return value.replace("\\", "\\\\").replace('"', '\\"') \
        .replace("\n", "\\n")


def _fmt_value(value):
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    value = float(value)
    # Exposition text must stay NaN-free: scrapers treat NaN samples as
    # staleness markers and +/-Inf sums break rate() math downstream.
    if math.isnan(value):
        return "0.0"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return repr(value)


def to_prometheus(metrics_snapshot):
    """The metrics snapshot in Prometheus text exposition format 0.0.4.

    Counters export as ``counter``, gauges as ``gauge``, histograms as
    classic ``histogram`` families (cumulative ``_bucket`` lines plus
    ``_sum`` and ``_count``).
    """
    lines = []
    by_family = {}
    for entry in (metrics_snapshot.get("counters") or {}).values():
        by_family.setdefault((_prom_name(entry["name"]), "counter"),
                             []).append(entry)
    for entry in (metrics_snapshot.get("gauges") or {}).values():
        by_family.setdefault((_prom_name(entry["name"]), "gauge"),
                             []).append(entry)
    for (name, kind), entries in sorted(by_family.items()):
        lines.append("# HELP %s repro %s" % (name, kind))
        lines.append("# TYPE %s %s" % (name, kind))
        for entry in entries:
            lines.append("%s%s %s" % (name, _prom_labels(entry["labels"]),
                                      _fmt_value(entry["value"])))
    histogram_families = {}
    for entry in (metrics_snapshot.get("histograms") or {}).values():
        histogram_families.setdefault(_prom_name(entry["name"]),
                                      []).append(entry)
    for name, entries in sorted(histogram_families.items()):
        lines.append("# HELP %s repro histogram" % name)
        lines.append("# TYPE %s histogram" % name)
        for entry in entries:
            cumulative = 0
            for bound, count in zip(entry["buckets"], entry["counts"]):
                cumulative += count
                lines.append("%s_bucket%s %d" % (
                    name,
                    _prom_labels(entry["labels"], {"le": _fmt_value(bound)}),
                    cumulative))
            cumulative += entry["counts"][-1]
            lines.append("%s_bucket%s %d" % (
                name, _prom_labels(entry["labels"], {"le": "+Inf"}),
                cumulative))
            lines.append("%s_sum%s %s" % (name,
                                          _prom_labels(entry["labels"]),
                                          _fmt_value(float(entry["sum"]))))
            lines.append("%s_count%s %d" % (name,
                                            _prom_labels(entry["labels"]),
                                            entry["count"]))
    return "\n".join(lines) + "\n" if lines else ""


def render_text(obs_snapshot, max_slow=10):
    """A terminal rendering of a full observability snapshot.

    ``obs_snapshot`` is the dict produced by
    ``StorageEngine.observability_snapshot()``: ``{"metrics": ...,
    "iostats": ..., "slow_queries": [...]}``.  A bare metrics snapshot
    (with "counters"/"histograms" at the top level) is accepted too.
    """
    if "metrics" in obs_snapshot:
        metrics = obs_snapshot["metrics"]
    else:
        metrics = obs_snapshot
    lines = []
    counters = metrics.get("counters") or {}
    if counters:
        lines.append("counters:")
        width = max(len(key) for key in counters)
        for key in sorted(counters):
            lines.append("  %-*s %d" % (width, key,
                                        counters[key]["value"]))
    gauges = metrics.get("gauges") or {}
    if gauges:
        lines.append("gauges:")
        width = max(len(key) for key in gauges)
        for key in sorted(gauges):
            lines.append("  %-*s %s" % (width, key, gauges[key]["value"]))
    histograms = metrics.get("histograms") or {}
    if histograms:
        lines.append("histograms (seconds):")
        width = max(len(key) for key in histograms)
        for key in sorted(histograms):
            entry = histograms[key]
            quantiles = entry.get("quantiles") or {}
            lines.append(
                "  %-*s n=%-6d p50=%.6f p95=%.6f p99=%.6f max=%.6f"
                % (width, key, entry["count"],
                   quantiles.get("p50", 0.0), quantiles.get("p95", 0.0),
                   quantiles.get("p99", 0.0), quantiles.get("max", 0.0)))
    iostats = obs_snapshot.get("iostats")
    if iostats:
        lines.append("io counters (engine lifetime):")
        width = max(len(key) for key in iostats)
        for key in sorted(iostats):
            lines.append("  %-*s %d" % (width, key, iostats[key]))
    slow = obs_snapshot.get("slow_queries") or []
    if slow:
        lines.append("slow queries (most recent %d):" % max_slow)
        for entry in slow[-max_slow:]:
            lines.append("  %8.3f s  %s" % (entry.get("seconds", 0.0),
                                            entry.get("statement", "?")))
    if not lines:
        lines.append("(no metrics recorded)")
    return "\n".join(lines)
