"""Request-trace retention and export.

Two halves:

* **Propagation** — :func:`make_traceparent` / :func:`parse_traceparent`
  implement the W3C Trace Context ``traceparent`` header
  (``00-<32 hex trace id>-<16 hex span id>-<2 hex flags>``), which is
  how :class:`~repro.server.client.ReproClient` and ``repro loadgen``
  tell the server "this request belongs to trace T, sample it (or
  don't)".
* **Retention** — :class:`TraceStore`, a bounded ring of completed
  request span trees with a keep policy mirroring the slow-query log:
  explicitly sampled requests are always kept, anything at or above the
  slow threshold is always kept, and 1-in-N of the rest is kept so the
  buffer shows typical traffic too.  :func:`to_chrome_trace` turns a
  stored entry into Chrome ``trace_event`` JSON loadable in
  ``about:tracing`` or Perfetto.

The store holds plain dicts (the span tree via ``Span.to_dict()``), not
live :class:`~repro.obs.tracer.Span` objects, so retained traces cost
only their JSON weight and serialize directly from ``GET /trace``.
"""

from __future__ import annotations

import collections
import secrets
import threading
import time

_VERSION = "00"
_FLAG_SAMPLED = 0x01


def make_traceparent(trace_id=None, span_id=None, sampled=True):
    """A W3C ``traceparent`` header value (ids generated when omitted)."""
    if trace_id is None:
        trace_id = secrets.token_hex(16)
    if span_id is None:
        span_id = secrets.token_hex(8)
    flags = _FLAG_SAMPLED if sampled else 0
    return "%s-%s-%s-%02x" % (_VERSION, trace_id, span_id, flags)


class TraceContext:
    """The parsed fields of a ``traceparent`` header."""

    __slots__ = ("trace_id", "parent_span_id", "sampled")

    def __init__(self, trace_id, parent_span_id, sampled):
        self.trace_id = trace_id
        self.parent_span_id = parent_span_id
        self.sampled = sampled

    def __repr__(self):
        return "TraceContext(trace_id=%r, parent_span_id=%r, sampled=%r)" % (
            self.trace_id, self.parent_span_id, self.sampled)


def _is_hex(value):
    try:
        int(value, 16)
    except (TypeError, ValueError):
        return False
    return True


def parse_traceparent(header):
    """Parse a ``traceparent`` header, or None when malformed.

    Tolerant of future versions (any 2-hex version other than ``ff``
    is accepted) but strict on field widths and the all-zero invalid
    ids, per the W3C spec.
    """
    if not header or not isinstance(header, str):
        return None
    parts = header.strip().split("-")
    if len(parts) < 4:
        return None
    version, trace_id, span_id, flags = parts[0], parts[1], parts[2], parts[3]
    if len(version) != 2 or not _is_hex(version) or version.lower() == "ff":
        return None
    if len(trace_id) != 32 or not _is_hex(trace_id) or set(trace_id) == {"0"}:
        return None
    if len(span_id) != 16 or not _is_hex(span_id) or set(span_id) == {"0"}:
        return None
    if len(flags) != 2 or not _is_hex(flags):
        return None
    sampled = bool(int(flags, 16) & _FLAG_SAMPLED)
    return TraceContext(trace_id.lower(), span_id.lower(), sampled)


class TraceStore:
    """Bounded ring of completed request traces with a keep policy.

    Keep policy, in order: the client asked (``sampled``), the request
    was slow (root duration ≥ ``slow_seconds``), or the request is the
    1-in-``sample_every``-th arrival.  Everything else is dropped at
    ``record`` time (the span tree was already built; the store only
    decides retention).

    Args:
        capacity: ring size; oldest entries are evicted first.
        sample_every: keep every Nth unsampled fast request; 0 disables
            ambient sampling entirely.
        slow_seconds: always-keep latency threshold (non-positive keeps
            everything, mirroring the slow-query log's trace-all mode).
    """

    def __init__(self, capacity=256, sample_every=16, slow_seconds=1.0):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if sample_every < 0:
            raise ValueError("sample_every must be >= 0")
        self.capacity = int(capacity)
        self.sample_every = int(sample_every)
        self.slow_seconds = float(slow_seconds)
        self._lock = threading.Lock()
        self._entries = collections.deque(maxlen=self.capacity)
        self._seen = 0
        self._kept = 0

    def __len__(self):
        return len(self._entries)

    def record(self, root, trace_id, request_id, endpoint, status,
               sampled=False):
        """Offer one completed request trace; returns the kept entry or
        None when the policy dropped it.

        Args:
            root: the request's completed root :class:`Span`.
            trace_id: 32-hex id from the client's traceparent (or
                server-generated for untraced clients).
            request_id: the server's per-request id (joins the slow
                log and loadgen samples to this trace).
            endpoint: request endpoint name for listings.
            status: HTTP status the request resolved to.
            sampled: the traceparent sampled flag — forces retention.
        """
        seconds = root.duration
        with self._lock:
            self._seen += 1
            keep = bool(sampled)
            if not keep and self.slow_seconds <= 0:
                keep = True
            if not keep and seconds >= self.slow_seconds > 0:
                keep = True
            if not keep and self.sample_every and \
                    self._seen % self.sample_every == 0:
                keep = True
            if not keep:
                return None
            entry = {
                "trace_id": trace_id,
                "request_id": request_id,
                "endpoint": endpoint,
                "status": int(status),
                "seconds": seconds,
                "unix_time": time.time(),
                "sampled": bool(sampled),
                "root": root.to_dict(),
            }
            self._entries.append(entry)
            self._kept += 1
        return entry

    def entries(self):
        """Newest-first list of retained entries (shared dicts —
        treat as read-only)."""
        with self._lock:
            return list(reversed(self._entries))

    def get(self, key):
        """Look up a trace by request id or trace id (newest wins)."""
        with self._lock:
            for entry in reversed(self._entries):
                if entry["request_id"] == key or entry["trace_id"] == key:
                    return entry
        return None

    def stats(self):
        """Retention counters for ``/trace`` listings and tests."""
        with self._lock:
            return {"seen": self._seen, "kept": self._kept,
                    "retained": len(self._entries),
                    "capacity": self.capacity}

    def clear(self):
        with self._lock:
            self._entries.clear()


def _walk_dict(node):
    yield node
    for child in node.get("children", ()):
        yield from _walk_dict(child)


def to_chrome_trace(entry):
    """Convert a stored trace entry to Chrome ``trace_event`` JSON.

    Produces complete-duration (``ph="X"``) events with microsecond
    timestamps relative to the request's root span, one ``tid`` per
    engine thread, plus ``thread_name`` metadata events so
    ``about:tracing``/Perfetto label the rows.  Spans recorded without
    timestamps (noop placeholders) are skipped.
    """
    root = entry["root"]
    base = root.get("started") or 0.0
    tids = {}
    events = []
    for node in _walk_dict(root):
        started, ended = node.get("started"), node.get("ended")
        if started is None or ended is None:
            continue
        thread = node.get("thread") or "main"
        tid = tids.setdefault(thread, len(tids) + 1)
        args = {str(k): v for k, v in (node.get("attrs") or {}).items()}
        for key, value in (node.get("counters") or {}).items():
            args["io." + str(key)] = value
        events.append({
            "name": node["name"],
            "cat": "repro",
            "ph": "X",
            "ts": (started - base) * 1e6,
            "dur": max(ended - started, 0.0) * 1e6,
            "pid": 1,
            "tid": tid,
            "args": args,
        })
    for thread, tid in tids.items():
        events.append({
            "name": "thread_name",
            "ph": "M",
            "pid": 1,
            "tid": tid,
            "args": {"name": thread},
        })
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "trace_id": entry["trace_id"],
            "request_id": entry["request_id"],
            "endpoint": entry["endpoint"],
        },
    }
