"""Metric primitives and the registry that owns them.

Three instrument kinds, deliberately minimal so they are cheap enough to
stay enabled in production paths:

* :class:`Counter` — a monotonically increasing integer (events, points,
  bytes).
* :class:`Gauge` — a last-write-wins value (series count, cache points).
* :class:`Histogram` — fixed-bucket latency distribution with
  p50/p95/p99/max read out by interpolation; fixed buckets make
  histograms mergeable across sessions by adding bucket counts.

A :class:`MetricsRegistry` hands out instruments keyed by name plus an
optional label set.  A disabled registry hands out shared no-op
instruments, so instrumented code never branches on an "is observability
on" flag.

Everything here is thread-safe: instrument creation is serialized by a
registry lock, and every update (``inc``/``set``/``observe``) is atomic
under a per-instrument lock, so concurrent queries never lose counts.
Snapshots take each instrument's lock in turn — consistent per
instrument, not across the whole registry, which is the usual metrics
contract.
"""

from __future__ import annotations

import bisect
import threading

#: Default latency buckets (seconds): log-spaced from 1 µs to 60 s.
DEFAULT_LATENCY_BUCKETS = (
    1e-6, 1e-5, 1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3,
    1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)

#: Quantiles reported by :meth:`Histogram.percentiles`.
REPORTED_QUANTILES = (0.5, 0.95, 0.99)


class Counter:
    """A monotonically increasing count (atomic increments)."""

    __slots__ = ("value", "_lock")

    def __init__(self):
        self.value = 0
        self._lock = threading.Lock()

    def inc(self, n=1):
        """Add ``n`` (must be >= 0)."""
        with self._lock:
            self.value += n


class Gauge:
    """A point-in-time value (atomic updates)."""

    __slots__ = ("value", "_lock")

    def __init__(self):
        self.value = 0
        self._lock = threading.Lock()

    def set(self, value):
        """Replace the current value."""
        with self._lock:
            self.value = value

    def inc(self, n=1):
        with self._lock:
            self.value += n

    def dec(self, n=1):
        with self._lock:
            self.value -= n


class Histogram:
    """A fixed-bucket distribution of observed values.

    ``counts[i]`` holds observations ``<= buckets[i]``; the final slot is
    the overflow (+Inf) bucket.  Sum, count and max are tracked exactly;
    quantiles are interpolated within the bucket they land in, which is
    the standard Prometheus-side estimate.
    """

    __slots__ = ("buckets", "counts", "count", "sum", "max", "_lock")

    def __init__(self, buckets=DEFAULT_LATENCY_BUCKETS):
        self.buckets = tuple(sorted(float(b) for b in buckets))
        if not self.buckets:
            raise ValueError("histogram needs at least one bucket bound")
        self.counts = [0] * (len(self.buckets) + 1)
        self.count = 0
        self.sum = 0.0
        self.max = 0.0
        self._lock = threading.Lock()

    def observe(self, value):
        """Record one observation."""
        value = float(value)
        with self._lock:
            self.counts[bisect.bisect_left(self.buckets, value)] += 1
            self.count += 1
            self.sum += value
            if value > self.max:
                self.max = value

    def quantile(self, q):
        """Estimated value at quantile ``q`` in [0, 1] (0.0 when empty).

        Interpolates linearly inside the winning bucket; observations in
        the overflow bucket report the exact maximum.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        running = 0
        for i, bucket_count in enumerate(self.counts):
            if not bucket_count:
                continue
            if running + bucket_count >= rank:
                if i == len(self.buckets):  # overflow bucket
                    return self.max
                lo = self.buckets[i - 1] if i > 0 else 0.0
                hi = min(self.buckets[i], self.max)
                fraction = (rank - running) / bucket_count
                return lo + (hi - lo) * max(fraction, 0.0)
            running += bucket_count
        return self.max

    def percentiles(self):
        """``{"p50": ..., "p95": ..., "p99": ..., "max": ...}``."""
        out = {"p%d" % round(q * 100): self.quantile(q)
               for q in REPORTED_QUANTILES}
        out["max"] = self.max
        return out

    @property
    def mean(self):
        """Arithmetic mean of the observations (0.0 when empty)."""
        return self.sum / self.count if self.count else 0.0

    def merge_state(self, counts, count, total, maximum):
        """Fold a previously snapshotted state into this histogram.

        Bucket layouts must match (they do when both sides use the same
        fixed buckets — the reason the buckets are fixed).
        """
        if len(counts) != len(self.counts):
            raise ValueError("bucket layout mismatch: %d vs %d slots"
                             % (len(counts), len(self.counts)))
        with self._lock:
            for i, n in enumerate(counts):
                self.counts[i] += int(n)
            self.count += int(count)
            self.sum += float(total)
            if float(maximum) > self.max:
                self.max = float(maximum)


class _NullInstrument:
    """Shared no-op stand-in for every instrument kind."""

    __slots__ = ()
    value = 0
    count = 0
    sum = 0.0
    max = 0.0
    mean = 0.0
    buckets = ()

    def inc(self, n=1):
        pass

    def dec(self, n=1):
        pass

    def set(self, value):
        pass

    def observe(self, value):
        pass

    def quantile(self, q):
        return 0.0

    def percentiles(self):
        return {"p50": 0.0, "p95": 0.0, "p99": 0.0, "max": 0.0}


_NULL = _NullInstrument()


def render_key(name, labels):
    """Canonical string key: ``name`` or ``name{k="v",...}`` (sorted)."""
    if not labels:
        return name
    inner = ",".join('%s="%s"' % (k, labels[k]) for k in sorted(labels))
    return "%s{%s}" % (name, inner)


class MetricsRegistry:
    """Owner of all instruments, keyed by ``(name, labels)``.

    >>> registry = MetricsRegistry()
    >>> registry.counter("writes_total").inc(3)
    >>> registry.counter("writes_total").value
    3
    """

    def __init__(self, enabled=True):
        self.enabled = enabled
        self._lock = threading.Lock()
        self._counters = {}
        self._gauges = {}
        self._histograms = {}

    @staticmethod
    def _key(name, labels):
        return (name, tuple(sorted(labels.items())) if labels else ())

    def counter(self, name, **labels):
        """The counter for ``name``/``labels`` (created on first use)."""
        if not self.enabled:
            return _NULL
        key = self._key(name, labels)
        instrument = self._counters.get(key)
        if instrument is None:
            with self._lock:
                instrument = self._counters.setdefault(key, Counter())
        return instrument

    def gauge(self, name, **labels):
        """The gauge for ``name``/``labels`` (created on first use)."""
        if not self.enabled:
            return _NULL
        key = self._key(name, labels)
        instrument = self._gauges.get(key)
        if instrument is None:
            with self._lock:
                instrument = self._gauges.setdefault(key, Gauge())
        return instrument

    def histogram(self, name, buckets=None, **labels):
        """The histogram for ``name``/``labels`` (created on first use)."""
        if not self.enabled:
            return _NULL
        key = self._key(name, labels)
        instrument = self._histograms.get(key)
        if instrument is None:
            with self._lock:
                instrument = self._histograms.setdefault(key, Histogram(
                    buckets if buckets is not None
                    else DEFAULT_LATENCY_BUCKETS))
        return instrument

    # -- snapshot / merge ---------------------------------------------------------

    def snapshot(self):
        """A JSON-able structured copy of every instrument.

        Shape::

            {"counters":   {key: {"name", "labels", "value"}},
             "gauges":     {key: {"name", "labels", "value"}},
             "histograms": {key: {"name", "labels", "buckets", "counts",
                                  "count", "sum", "max", "quantiles"}}}
        """
        with self._lock:
            counter_items = sorted(self._counters.items())
            gauge_items = sorted(self._gauges.items())
            histogram_items = sorted(self._histograms.items())
        counters = {}
        for (name, labels), instrument in counter_items:
            counters[render_key(name, dict(labels))] = {
                "name": name, "labels": dict(labels),
                "value": instrument.value}
        gauges = {}
        for (name, labels), instrument in gauge_items:
            gauges[render_key(name, dict(labels))] = {
                "name": name, "labels": dict(labels),
                "value": instrument.value}
        histograms = {}
        for (name, labels), instrument in histogram_items:
            with instrument._lock:
                histograms[render_key(name, dict(labels))] = {
                    "name": name, "labels": dict(labels),
                    "buckets": list(instrument.buckets),
                    "counts": list(instrument.counts),
                    "count": instrument.count,
                    "sum": instrument.sum,
                    "max": instrument.max,
                    "quantiles": instrument.percentiles(),
                }
        return {"counters": counters, "gauges": gauges,
                "histograms": histograms}

    def load(self, snapshot):
        """Merge a :meth:`snapshot` dict into the live instruments.

        Counters and histograms accumulate; gauges take the snapshot's
        value.  Unknown or malformed entries are skipped — loading stale
        observability state must never break the engine.
        """
        if not self.enabled or not isinstance(snapshot, dict):
            return
        for entry in dict(snapshot.get("counters") or {}).values():
            try:
                self.counter(entry["name"],
                             **entry.get("labels", {})).inc(
                                 int(entry["value"]))
            except (KeyError, TypeError, ValueError):
                continue
        for entry in dict(snapshot.get("gauges") or {}).values():
            try:
                self.gauge(entry["name"],
                           **entry.get("labels", {})).set(entry["value"])
            except (KeyError, TypeError):
                continue
        for entry in dict(snapshot.get("histograms") or {}).values():
            try:
                histogram = self.histogram(entry["name"],
                                           buckets=entry["buckets"],
                                           **entry.get("labels", {}))
                histogram.merge_state(entry["counts"], entry["count"],
                                      entry["sum"], entry["max"])
            except (KeyError, TypeError, ValueError):
                continue

    def reset(self):
        """Drop every instrument."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


#: A registry that records nothing; safe default for optional hooks.
NULL_REGISTRY = MetricsRegistry(enabled=False)
