"""Sampling wall-clock profiler over ``sys._current_frames()``.

A daemon thread wakes every ``interval`` seconds, snapshots every other
thread's current Python frame stack, and aggregates identical stacks
into a counter.  Output is flamegraph.pl-compatible collapsed-stack
text — one ``frame;frame;frame count`` line per distinct stack, with
the thread name as the root frame so per-thread flamegraphs fall out
for free.

Design constraints:

* **Zero cost when off.**  No thread exists until :meth:`start`; the
  rest of the system never consults the profiler on any hot path, so
  the off state adds literally nothing (asserted by
  ``benchmarks/test_obs_overhead.py``).
* **Bounded cost when on.**  Each tick is one
  ``sys._current_frames()`` call (a C-level dict copy) plus a frame
  walk per live thread; at the 5 ms default that is well under 5%
  overhead for the workloads in this repo.
* **Stdlib only.**  Wall-clock sampling, not CPU sampling: a thread
  blocked on a lock or a queue *is* sampled, which is exactly what the
  contention work in this PR wants to see.
"""

from __future__ import annotations

import sys
import threading
import time


def _collapse_frame(frame):
    code = frame.f_code
    return "%s:%s" % (code.co_filename.rsplit("/", 1)[-1], code.co_name)


class SamplingProfiler:
    """Start/stop wall-clock sampler producing collapsed stacks.

    Args:
        interval: seconds between samples (default 5 ms).
    """

    def __init__(self, interval=0.005):
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.interval = float(interval)
        self._lock = threading.Lock()
        self._thread = None
        self._stop = threading.Event()
        self._stacks = {}
        self._samples = 0
        self._started_at = None
        self._stopped_at = None

    @property
    def running(self):
        with self._lock:
            return self._thread is not None

    def start(self, interval=None):
        """Begin sampling (idempotent); returns True if newly started."""
        with self._lock:
            if self._thread is not None:
                return False
            if interval is not None:
                if interval <= 0:
                    raise ValueError("interval must be positive")
                self.interval = float(interval)
            self._stacks = {}
            self._samples = 0
            self._started_at = time.time()
            self._stopped_at = None
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._loop, name="repro-profiler", daemon=True)
            self._thread.start()
        return True

    def stop(self):
        """Stop sampling and return the collapsed-stack text."""
        with self._lock:
            thread = self._thread
            self._thread = None
        if thread is not None:
            self._stop.set()
            thread.join(timeout=5.0)
            with self._lock:
                self._stopped_at = time.time()
        return self.collapsed()

    def _loop(self):
        own = threading.get_ident()
        names = {}
        while not self._stop.wait(self.interval):
            frames = sys._current_frames()
            # Refresh the ident->name map only for unseen idents; the
            # enumerate() walk is the expensive part of naming.
            unseen = [i for i in frames if i != own and i not in names]
            if unseen:
                for t in threading.enumerate():
                    names[t.ident] = t.name
            with self._lock:
                if self._thread is None:
                    break
                self._samples += 1
                for ident, frame in frames.items():
                    if ident == own:
                        continue
                    stack = []
                    while frame is not None:
                        stack.append(_collapse_frame(frame))
                        frame = frame.f_back
                    stack.append(names.get(ident, "thread-%d" % ident))
                    key = tuple(reversed(stack))
                    self._stacks[key] = self._stacks.get(key, 0) + 1

    def collapsed(self):
        """Flamegraph.pl-compatible text: ``a;b;c count`` per line,
        heaviest stacks first."""
        with self._lock:
            items = sorted(self._stacks.items(),
                           key=lambda kv: (-kv[1], kv[0]))
        return "\n".join("%s %d" % (";".join(stack), count)
                         for stack, count in items)

    def stats(self):
        """Sampler state for ``GET /profile`` and the CLI."""
        with self._lock:
            return {
                "running": self._thread is not None,
                "interval_seconds": self.interval,
                "samples": self._samples,
                "distinct_stacks": len(self._stacks),
                "started_unix": self._started_at,
                "stopped_unix": self._stopped_at,
            }
