"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``generate``  — materialize a synthetic dataset profile as CSV
* ``load``      — ingest a CSV into a storage directory
* ``info``      — inspect a storage directory (series, chunks, deletes)
* ``query``     — run a SQL statement and print the result table
              (``--explain`` adds the span tree and M4-LSM trace)
* ``render``    — M4-reduce a series and draw it (ASCII or PBM file)
* ``fsck``      — verify every checksum in a store (exits non-zero on
              data-affecting damage; ``--quarantine`` records damaged
              chunks so reads skip them)
* ``compact``   — run full compaction on a storage directory
* ``stats``     — print the store's observability snapshot (counters,
              histogram quantiles, slow queries; text/JSON/Prometheus)
* ``serve``     — expose a store over HTTP (``repro.server``): SQL
              queries, M4 renders, stats/health, admission control;
              ``--replicate-to`` ships writes to hot standbys,
              ``--standby`` boots a replica
* ``promote``   — turn a running standby into a writable primary
              (manual failover; ``POST /replication/promote``)
* ``loadgen``   — drive a running server with seeded pan/zoom
              dashboard sessions and report throughput/latency
              (``--ingest RATE`` adds a streaming-write pump)
* ``ingest``    — stream a seeded torture workload (out-of-order,
              late, duplicate batches) into a running server's
              ``POST /ingest``, honouring Retry-After backpressure
* ``trace``     — request traces: list/fetch from a running server
              (``--url``), or probe a store locally and print the
              span tree; ``--chrome`` exports Chrome trace_event JSON
* ``profile``   — sampling wall-clock profiler: collapsed stacks from
              a running server (``--url``) or a local probe loop
* ``bench``     — scenario-matrix benchmark driver: run the standing
              cardinality x overlap x delete x operator x parallelism
              x tile-cache matrix into one schema'd artifact
              (``--matrix``), and gate it against the checked-in
              baseline (``--check``, exit 1 on regression)

Every command operates on a plain directory, so the same store can be
inspected, queried and extended across invocations (recovery included).
"""

from __future__ import annotations

import argparse
import os
import sys

from .datasets.generators import PROFILES
from .datasets.loader import load_csv, save_csv
from .errors import ReproError
from .query.executor import Executor
from .query.sql import parse as parse_sql
from .storage.compaction import compact_all
from .storage.engine import StorageEngine


def _add_parallelism(subparser):
    subparser.add_argument(
        "--parallelism", type=int, default=1, metavar="N",
        help="chunk pipeline worker threads (default 1 = serial; "
             "results are identical at any setting)")


def _add_tile_cache(subparser):
    subparser.add_argument(
        "--tile-cache", type=int, nargs="?", const=16 * 1024 * 1024,
        default=0, metavar="BYTES",
        help="enable the M4 viewport tile cache with this LRU byte "
             "budget (bare flag = 16 MiB; pan/zoom queries reuse "
             "cached tiles, results are byte-identical either way)")


def _add_shards(subparser):
    subparser.add_argument(
        "--shards", type=int, default=None, metavar="N",
        help="shard the store across N engine worker processes "
             "(hash-placed by series; 1 = in-process fast path, "
             "byte-identical to an unsharded store; default: follow "
             "the store's pinned shards.json topology)")


def _open_store(args, config, must_exist=True):
    """Open ``args.db`` honouring ``--shards`` and pinned topology.

    Returns a plain :class:`StorageEngine` (one shard) or a
    :class:`~repro.shard.router.ShardRouter` — both context managers
    with the facade surface the commands use.
    """
    from .shard import open_store
    path = _require_store(args.db) if must_exist else args.db
    return open_store(path, config, shards=getattr(args, "shards", None))


def _is_sharded(engine):
    return bool(getattr(engine, "is_sharded", False))


def build_parser():
    """The argparse tree for the ``repro`` CLI."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="M4-LSM reproduction: LSM time series store with a "
                    "merge-free M4 visualization operator.")
    commands = parser.add_subparsers(dest="command", required=True)

    generate = commands.add_parser(
        "generate", help="write a synthetic dataset profile as CSV")
    generate.add_argument("--dataset", choices=sorted(PROFILES),
                          default="MF03")
    generate.add_argument("--points", type=int, default=100_000)
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument("--out", required=True,
                          help="output CSV path")

    load = commands.add_parser("load", help="ingest a CSV into a store")
    load.add_argument("--db", required=True, help="storage directory")
    load.add_argument("--series", required=True, help="series name")
    load.add_argument("--csv", required=True, help="input CSV path")
    load.add_argument("--chunk-points", type=int, default=1000)
    _add_parallelism(load)
    _add_shards(load)

    info = commands.add_parser("info", help="inspect a storage directory")
    info.add_argument("--db", required=True)

    query = commands.add_parser("query", help="run a SQL statement")
    query.add_argument("--db", required=True)
    query.add_argument("sql", help="statement, e.g. "
                       "\"SELECT M4(s) FROM x GROUP BY SPANS(100)\"")
    query.add_argument("--max-rows", type=int, default=40)
    query.add_argument("--explain", action="store_true",
                       help="after the result table, print the span tree "
                            "and (for M4-LSM) the per-span query trace")
    _add_parallelism(query)
    _add_tile_cache(query)
    _add_shards(query)

    render = commands.add_parser(
        "render", help="M4-reduce a series and draw a line chart")
    render.add_argument("--db", required=True)
    render.add_argument("--series", required=True)
    render.add_argument("--width", type=int, default=100)
    render.add_argument("--height", type=int, default=24)
    render.add_argument("--out", help="write a PBM image instead of ASCII")
    _add_parallelism(render)
    _add_tile_cache(render)
    _add_shards(render)

    compact = commands.add_parser(
        "compact", help="fold overlaps and deletes into fresh chunks")
    compact.add_argument("--db", required=True)
    _add_parallelism(compact)

    fsck = commands.add_parser(
        "fsck", help="verify every checksum in a store")
    fsck.add_argument("--db", required=True, help="storage directory")
    fsck.add_argument("--json", action="store_true",
                      help="print the report as JSON instead of text")
    fsck.add_argument("--quarantine", action="store_true",
                      help="record damaged chunks in the store's "
                           "quarantine registry so degraded reads skip "
                           "them")
    fsck.add_argument("--no-pages", action="store_true",
                      help="skip page payload verification (fast: only "
                           "magics, metadata and record logs)")

    stats = commands.add_parser(
        "stats", help="print the store's observability snapshot")
    stats.add_argument("db", help="storage directory")
    stats.add_argument("--format", choices=("text", "json", "prometheus"),
                       default="text")
    stats.add_argument("--probe", metavar="SERIES",
                       help="run a full-range M4-LSM probe query against "
                            "SERIES before reporting")
    stats.add_argument("--probe-w", type=int, default=100,
                       help="span count for the probe query")
    _add_parallelism(stats)

    serve = commands.add_parser(
        "serve", help="serve a store over HTTP (queries, renders, stats)")
    serve.add_argument("--db", required=True, help="storage directory")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8731,
                       help="listen port (0 = ephemeral)")
    serve.add_argument("--workers", type=int, default=4,
                       help="admission worker pool size")
    serve.add_argument("--queue-depth", type=int, default=16,
                       help="queued requests before shedding with 503")
    serve.add_argument("--timeout", type=float, default=10.0,
                       help="default per-request deadline (seconds)")
    serve.add_argument("--max-timeout", type=float, default=60.0,
                       help="cap on client-requested deadlines (seconds)")
    serve.add_argument("--quiet", action="store_true",
                       help="suppress per-request log lines")
    serve.add_argument("--strict", action="store_true",
                       help="disable degraded reads: a corrupt chunk "
                            "fails the request with 500 instead of a "
                            "flagged partial answer")
    serve.add_argument("--ingest-queue-bytes", type=int,
                       default=8 * 1024 * 1024, metavar="BYTES",
                       help="bounded ingest queue budget; past it "
                            "POST /ingest sheds with 429 + Retry-After "
                            "(default 8 MiB)")
    serve.add_argument("--ingest-tenant-budget", type=int, default=0,
                       metavar="BYTES",
                       help="per-tenant share of the ingest queue "
                            "(0 = no per-tenant cap)")
    serve.add_argument("--live-subscribers", type=int, default=64,
                       metavar="N",
                       help="max concurrent GET /live waiters before "
                            "shedding with 503")
    serve.add_argument("--live-poll", type=float, default=10.0,
                       metavar="SECONDS",
                       help="default long-poll wait for GET /live")
    serve.add_argument("--replicate-to", action="append", default=[],
                       metavar="URL",
                       help="ship every acknowledged write to this "
                            "standby URL (repeatable); makes this node "
                            "the replication primary")
    serve.add_argument("--standby", action="store_true",
                       help="boot as a hot standby: reads are served "
                            "with bounded staleness, writes answer 409 "
                            "naming the primary, state arrives via the "
                            "primary's POST /replicate stream")
    serve.add_argument("--node-id", default="",
                       help="stable replication node id (default: a "
                            "derived random id)")
    serve.add_argument("--advertise", default="", metavar="URL",
                       help="URL this node advertises to peers (write "
                            "redirects point here); default "
                            "http://HOST:PORT")
    serve.add_argument("--lease", type=float, default=5.0,
                       metavar="SECONDS",
                       help="replication lease: idle-heartbeat cadence "
                            "on the primary, silence budget before an "
                            "--auto-promote standby takes over")
    serve.add_argument("--auto-promote", action="store_true",
                       help="standby only: self-promote once the "
                            "primary has been silent longer than "
                            "--lease")
    serve.add_argument("--ingest-ack",
                       choices=("queued", "applied", "replicated"),
                       default="queued",
                       help="POST /ingest ack durability: queued "
                            "(enqueue), applied (WAL on this node) or "
                            "replicated (every live replica acked the "
                            "shipped frames)")
    _add_parallelism(serve)
    _add_tile_cache(serve)
    _add_shards(serve)

    promote = commands.add_parser(
        "promote", help="turn a running standby into a writable primary")
    promote.add_argument("--url", required=True,
                         help="standby base URL, e.g. "
                              "http://127.0.0.1:8732")
    promote.add_argument("--json", action="store_true",
                         help="print the resulting replication status "
                              "as JSON")

    loadgen = commands.add_parser(
        "loadgen", help="drive a server with pan/zoom dashboard sessions")
    loadgen.add_argument("--url", required=True,
                         help="server base URL, e.g. http://127.0.0.1:8731")
    loadgen.add_argument("--series", action="append",
                         help="series to load (repeatable; default: all)")
    loadgen.add_argument("--mode", choices=("closed", "open"),
                         default="closed")
    loadgen.add_argument("--users", type=int, default=4,
                         help="concurrent users (closed-loop)")
    loadgen.add_argument("--rate", type=float,
                         help="arrival rate in req/s (open-loop)")
    loadgen.add_argument("--duration", type=float, default=5.0,
                         help="run length in seconds")
    loadgen.add_argument("--width", type=int, default=256,
                         help="spans per query (dashboard pixel width)")
    loadgen.add_argument("--seed", type=int, default=0)
    loadgen.add_argument("--timeout-ms", type=int,
                         help="per-request deadline sent to the server")
    loadgen.add_argument("--align", action="store_true",
                         help="snap session viewports to the power-of-two "
                              "span grid so a --tile-cache server can "
                              "reuse tiles across pans and zooms")
    loadgen.add_argument("--json", action="store_true",
                         help="print the report as JSON instead of text")
    loadgen.add_argument("--trace-every", type=int, default=16,
                         metavar="N",
                         help="set the traceparent sampled flag on every "
                              "Nth request so the server retains those "
                              "traces (0 = never; default 16)")
    loadgen.add_argument("--ingest", type=float, default=0.0,
                         metavar="RATE",
                         help="also stream tail-append writes at RATE "
                              "points/s while the dashboard sessions "
                              "run; acks/sheds land in the report")
    loadgen.add_argument("--ingest-batch", type=int, default=200,
                         metavar="N",
                         help="points per POST /ingest batch for the "
                              "--ingest pump")
    loadgen.add_argument("--ingest-series", default="ingest-feed",
                         metavar="NAME",
                         help="series the --ingest pump appends to "
                              "(kept separate from dashboard series)")

    ingest = commands.add_parser(
        "ingest", help="stream a seeded torture workload into a server")
    ingest.add_argument("--url", required=True,
                        help="server base URL, e.g. http://127.0.0.1:8731")
    ingest.add_argument("--series", default="torture",
                        help="target series (auto-created)")
    ingest.add_argument("--points", type=int, default=10_000)
    ingest.add_argument("--batch-size", type=int, default=500)
    ingest.add_argument("--ooo-fraction", type=float, default=0.1,
                        help="fraction of points delayed into later "
                             "batches (out-of-order arrival)")
    ingest.add_argument("--dup-fraction", type=float, default=0.02,
                        help="fraction of timestamps re-emitted later "
                             "with a different value (last wins)")
    ingest.add_argument("--max-lag", type=int, default=4,
                        help="max batches a late point lags behind")
    ingest.add_argument("--dataset", choices=sorted(PROFILES),
                        help="value shape (default: unit random walk)")
    ingest.add_argument("--seed", type=int, default=0)
    ingest.add_argument("--rate", type=float, default=0.0,
                        help="pace batches at RATE points/s "
                             "(0 = as fast as acks allow)")
    ingest.add_argument("--tenant",
                        help="tenant label for per-tenant byte budgets")
    ingest.add_argument("--json", action="store_true",
                        help="print the summary as JSON")

    trace = commands.add_parser(
        "trace", help="inspect request traces (server or local probe)")
    trace.add_argument("db", nargs="?",
                       help="storage directory: run one traced probe "
                            "query locally and print its span tree")
    trace.add_argument("--url",
                       help="running server base URL: list retained "
                            "traces, or fetch one with --id")
    trace.add_argument("--id", dest="trace_id", metavar="ID",
                       help="request id (r000042) or trace id to fetch "
                            "from the server")
    trace.add_argument("--limit", type=int, default=20,
                       help="listing length (server mode)")
    trace.add_argument("--series", metavar="SERIES",
                       help="series for the local probe (default: first "
                            "with data)")
    trace.add_argument("--w", type=int, default=100,
                       help="span count for the local probe query")
    trace.add_argument("--chrome", metavar="OUT",
                       help="write the trace as Chrome trace_event JSON "
                            "to OUT (open in about:tracing / Perfetto)")
    _add_parallelism(trace)
    _add_tile_cache(trace)

    profile = commands.add_parser(
        "profile", help="sampling wall-clock profiler (collapsed stacks)")
    profile.add_argument("db", nargs="?",
                         help="storage directory: profile a local probe "
                              "query loop")
    profile.add_argument("--url",
                         help="running server base URL: start the "
                              "server's profiler, wait, stop, print")
    profile.add_argument("--seconds", type=float, default=2.0,
                         help="sampling window length")
    profile.add_argument("--interval-ms", type=float, default=5.0,
                         help="sampling interval in milliseconds")
    profile.add_argument("--series", metavar="SERIES",
                         help="series for the local probe loop")
    profile.add_argument("--w", type=int, default=100,
                         help="span count for local probe queries")
    profile.add_argument("--out", metavar="FILE",
                         help="write collapsed stacks to FILE "
                              "(flamegraph.pl format) instead of stdout")
    _add_parallelism(profile)
    _add_tile_cache(profile)

    bench = commands.add_parser(
        "bench", help="scenario-matrix benchmark driver + regression "
                      "gate")
    bench.add_argument("--matrix", action="store_true",
                       help="run the scenario matrix and write the "
                            "artifact to --out")
    bench.add_argument("--list", action="store_true",
                       help="list matrix cells (id + gated flag) and "
                            "exit")
    bench.add_argument("--cells", metavar="PATTERN",
                       help="only run/list cells whose id contains any "
                            "of the comma-separated substrings; the "
                            "token 'gated' selects the CI-gated subset")
    bench.add_argument("--points", type=int, metavar="N",
                       help="points per series (default: "
                            "REPRO_BENCH_POINTS or 400000)")
    bench.add_argument("--repeats", type=int, default=5,
                       help="timed runs per cell; p50/p99 and the "
                            "noise floor come from these samples")
    bench.add_argument("--out", default="benchmarks/BENCH_matrix.json",
                       metavar="PATH",
                       help="artifact path written by --matrix and "
                            "checked by a bare --check")
    bench.add_argument("--check", nargs="?", const=True,
                       metavar="ARTIFACT",
                       help="gate an artifact (default: the one just "
                            "run, else --out) against --baseline; "
                            "exits 1 on any gated regression")
    bench.add_argument("--baseline",
                       default="benchmarks/BENCH_matrix.json",
                       metavar="PATH",
                       help="baseline artifact for --check")
    bench.add_argument("--threshold", type=float, default=0.20,
                       help="relative p50 regression allowance "
                            "(default 0.20; widened by the measured "
                            "noise floor)")
    bench.add_argument("--all-cells", action="store_true",
                       help="gate every cell, not only the gated "
                            "subset")
    bench.add_argument("--wall", choices=("auto", "strict", "off"),
                       default="auto",
                       help="wall-clock gating: auto = strict only "
                            "when both artifacts share a machine "
                            "fingerprint (I/O counters always gate)")
    bench.add_argument("--shards-sweep", action="store_true",
                       help="run the E19 shard-count scaling sweep "
                            "(closed-loop server load at shards = "
                            "1/2/4/8 + byte-identity checks) and write "
                            "the artifact to --shards-out")
    bench.add_argument("--shards-out",
                       default="benchmarks/BENCH_shards.json",
                       metavar="PATH",
                       help="artifact path for --shards-sweep")
    bench.add_argument("--shards-duration", type=float, default=2.0,
                       metavar="SECONDS",
                       help="closed-loop measurement window per shard "
                            "count in the --shards-sweep")
    return parser


def _engine_config(args, **overrides):
    """A :class:`StorageConfig` from the common CLI knobs
    (``--parallelism``, ``--tile-cache``)."""
    from .storage.config import StorageConfig
    return StorageConfig(parallelism=getattr(args, "parallelism", 1),
                         tile_cache_bytes=getattr(args, "tile_cache", 0),
                         **overrides)


def _require_store(path):
    """``path`` for commands that read an existing store.

    ``StorageEngine`` creates its directory on open, so without this
    check a typo'd ``--db`` would silently materialize an empty store
    instead of failing.
    """
    if not os.path.isdir(path):
        raise ReproError("no store at %r (directory does not exist)"
                         % str(path))
    return path


def main(argv=None):
    """Entry point; returns a process exit code.

    Every anticipated failure — bad SQL, missing series, a corrupt or
    absent store, filesystem errors — prints a one-line ``error:``
    message and exits 1; tracebacks are reserved for actual bugs.
    """
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except BrokenPipeError:
        # Reader went away (e.g. `repro stats db | head`); redirect
        # stdout to devnull so the interpreter's exit flush stays quiet.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0
    except (ReproError, OSError) as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 1


def _cmd_generate(args):
    """``repro generate``: write a synthetic dataset profile to CSV.

    Args (from argparse): ``dataset`` (Table 2 profile name),
    ``points``, ``seed``, ``out`` (CSV path).  Returns 0; an
    unwritable path surfaces as ``OSError`` (caught in :func:`main`).
    """
    t, v = PROFILES[args.dataset].generate(args.points, seed=args.seed)
    save_csv(args.out, t, v)
    print("wrote %d points of %s to %s" % (t.size, args.dataset, args.out))
    return 0


def _cmd_load(args):
    """``repro load``: ingest a CSV into a store, flushed to TsFiles.

    Args (from argparse): ``db``, ``series``, ``csv``,
    ``chunk-points`` plus the shared engine flags.  Creates the store
    directory if needed; returns 0.  A malformed CSV raises
    :class:`~repro.errors.ReproError` (caught in :func:`main`).
    """
    t, v = load_csv(args.csv)
    config = _engine_config(
        args, avg_series_point_number_threshold=args.chunk_points)
    with _open_store(args, config, must_exist=False) as engine:
        engine.create_series(args.series)
        engine.write_batch(args.series, t, v)
        engine.flush_all()
        if _is_sharded(engine):
            chunks = engine.chunk_count(args.series)
            where = " on shard %02d" % engine.series_shard(args.series)
        else:
            chunks = len(engine.chunks_for(args.series))
            where = ""
    print("loaded %d points into %s (%d chunks%s)"
          % (t.size, args.series, chunks, where))
    return 0


def _cmd_info(args):
    """``repro info``: one summary row per series (points, chunks,
    deletes, time range).  Returns 0; a missing store exits 1 via
    :func:`_require_store`.
    """
    from .storage.config import StorageConfig
    with _open_store(args, StorageConfig()) as engine:
        if engine.recovery_summary:
            print("recovered: %s" % engine.recovery_summary)
        engine.flush_all()
        sharded = _is_sharded(engine)
        if sharded:
            print("sharded store: %d shards" % engine.n_shards)
        print("%-30s %8s %8s %8s %22s" % ("series", "points", "chunks",
                                          "deletes", "time range"))
        if sharded:
            rows, down = engine.series_info()
            for row in rows:
                time_range = "(empty)" if row["chunks"] == 0 else \
                    "[%d, %d]" % (row["start_time"], row["end_time"])
                print("%-30s %8d %8d %8d %22s"
                      % (row["name"], row["points"], row["chunks"],
                         row["deletes"], time_range))
            if down:
                print("warning: shard(s) down, listing incomplete: %s"
                      % ", ".join("%02d" % s for s in down))
        else:
            for name in sorted(engine.series_names()):
                chunks = engine.chunks_for(name)
                deletes = engine.deletes_for(name)
                if chunks:
                    lo = min(c.start_time for c in chunks)
                    hi = max(c.end_time for c in chunks)
                    time_range = "[%d, %d]" % (lo, hi)
                    points = sum(c.n_points for c in chunks)
                else:
                    time_range = "(empty)"
                    points = 0
                print("%-30s %8d %8d %8d %22s"
                      % (name, points, len(chunks), len(deletes),
                         time_range))
    return 0


def _cmd_query(args):
    """``repro query``: run one SQL statement, print a pretty table.

    With ``--explain`` also prints the span tree and the operator
    trace.  Returns 0; bad SQL, unknown series and malformed ranges
    raise :class:`~repro.errors.ReproError` (caught in :func:`main`).
    """
    with _open_store(args, _engine_config(args)) as engine:
        engine.flush_all()
        if _is_sharded(engine):
            if args.explain:
                print("error: --explain needs a single engine (run it "
                      "against one shard-NN directory)",
                      file=sys.stderr)
                return 1
            table = engine.execute_sql(args.sql)
            print(table.pretty(max_rows=args.max_rows))
            return 0
        executor = Executor(engine)
        parsed = parse_sql(args.sql)
        if args.explain:
            table, trace = executor.explain(parsed, statement=args.sql)
        else:
            table, trace = executor.execute(parsed,
                                            statement=args.sql), None
        print(table.pretty(max_rows=args.max_rows))
        if args.explain:
            root = engine.tracer.last_root
            if root is not None:
                print()
                print("span tree:")
                print(root.render(indent=1))
            if trace is not None:
                print()
                print(trace.render())
    return 0


def _cmd_render(args):
    """``repro render``: reduce + rasterize a series (ASCII or PBM).

    Shares :func:`~repro.server.service.render_chart` with
    ``GET /render``, so CLI and server pixels are byte-identical —
    with ``--tile-cache`` the chart is stitched from cached M4 tiles.
    Returns 0; an empty series raises :class:`~repro.errors.ReproError`.
    """
    from .server.service import render_chart
    from .viz.chart import save_pbm, to_ascii
    with _open_store(args, _engine_config(args)) as engine:
        engine.flush_all()
        # Shared with GET /render, so server output is byte-identical
        # (the sharded path runs the same render_chart on the owner).
        if _is_sharded(engine):
            matrix, _result = engine.render_series(
                args.series, args.width, args.height)
        else:
            matrix, _result = render_chart(engine, args.series,
                                           args.width, args.height)
        if args.out:
            save_pbm(matrix, args.out)
            print("wrote %dx%d PBM to %s" % (args.width, args.height,
                                             args.out))
        else:
            print(to_ascii(matrix))
    return 0


def _cmd_stats(args):
    """``repro stats``: print the observability snapshot (text, JSON
    or Prometheus exposition).  ``--probe SERIES`` first runs one
    M4-LSM query so a cold store still shows non-zero counters.
    Returns 0, or 1 when the probe series is empty.
    """
    from .core.m4lsm import M4LSMOperator
    from .obs import render_text, to_json, to_prometheus
    with StorageEngine(_require_store(args.db),
                       _engine_config(args)) as engine:
        if args.probe:
            engine.flush_all()
            chunks = engine.chunks_for(args.probe)
            if not chunks:
                print("error: series %r is empty" % args.probe,
                      file=sys.stderr)
                return 1
            t_qs = min(c.start_time for c in chunks)
            t_qe = max(c.end_time for c in chunks) + 1
            M4LSMOperator(engine).query(args.probe, t_qs, t_qe,
                                        args.probe_w)
        snapshot = engine.observability_snapshot()
    if args.format == "json":
        print(to_json(snapshot))
    elif args.format == "prometheus":
        print(to_prometheus(snapshot["metrics"]), end="")
    else:
        print(render_text(snapshot))
    return 0


def _cmd_fsck(args):
    """``repro fsck``: offline integrity check of a whole store.

    Returns 0 for a clean store (warnings allowed), 1 when any
    data-affecting error was found — the exit code is the contract
    scripts rely on.  ``--json`` emits the machine-readable report.
    """
    import json as json_module

    from .storage.fsck import fsck_store
    report = fsck_store(_require_store(args.db),
                        quarantine=args.quarantine,
                        verify_pages=not args.no_pages)
    if args.json:
        print(json_module.dumps(report.as_dict(), indent=2,
                                sort_keys=True))
    else:
        print(report.render())
    return 0 if report.clean else 1


def _cmd_compact(args):
    """``repro compact``: merge-sort every series into one chunk
    sequence, dropping deleted/overwritten points (and invalidating
    any cached tiles).  Prints surviving point counts; returns 0.
    """
    with StorageEngine(_require_store(args.db),
                       _engine_config(args)) as engine:
        engine.flush_all()
        counts = compact_all(engine)
    for name, survivors in sorted(counts.items()):
        print("%s: %d points" % (name, survivors))
    return 0


def _cmd_serve(args):
    """``repro serve``: boot the HTTP query service over a store.

    Blocks until SIGTERM/Ctrl-C, then drains in-flight requests and
    closes the engine (persisting obs — and tiles, when configured).
    Returns 0.
    """
    import signal
    import threading

    from .server import ServerConfig, start_server

    engine = _open_store(args, _engine_config(args))
    if engine.recovery_summary:
        print("recovered: %s" % engine.recovery_summary)
    engine.flush_all()  # buffered WAL points become query-visible
    advertise = args.advertise
    if not advertise and args.port:
        advertise = "http://%s:%d" % (args.host, args.port)
    config = ServerConfig(host=args.host, port=args.port,
                          workers=args.workers,
                          queue_depth=args.queue_depth,
                          default_timeout_seconds=args.timeout,
                          max_timeout_seconds=max(args.max_timeout,
                                                  args.timeout),
                          quiet=args.quiet, strict=args.strict,
                          ingest_queue_bytes=args.ingest_queue_bytes,
                          ingest_tenant_budget_bytes=(
                              args.ingest_tenant_budget),
                          live_max_subscribers=args.live_subscribers,
                          live_poll_seconds=args.live_poll,
                          standby=args.standby,
                          replicate_to=tuple(args.replicate_to or ()),
                          node_id=args.node_id,
                          advertise_url=advertise,
                          lease_seconds=args.lease,
                          auto_promote=args.auto_promote,
                          ingest_ack=args.ingest_ack)
    try:
        handle = start_server(engine, config, own_engine=True)
    except ValueError as exc:
        # e.g. replication flags against a sharded store
        engine.close()
        print("error: %s" % exc, file=sys.stderr)
        return 1
    host, port = handle.address
    role = ""
    if args.standby:
        role = " [standby%s]" % (" auto-promote" if args.auto_promote
                                 else "")
    elif args.replicate_to:
        role = " [primary -> %s]" % ", ".join(args.replicate_to)
    if _is_sharded(engine):
        role += " [%d shards]" % engine.n_shards
    print("serving %s on http://%s:%d%s (workers=%d queue=%d "
          "timeout=%.1fs); Ctrl-C to drain and stop"
          % (args.db, host, port, role, config.workers,
             config.queue_depth, config.default_timeout_seconds),
          flush=True)
    stop = threading.Event()
    try:
        signal.signal(signal.SIGTERM, lambda *_: stop.set())
    except ValueError:
        pass  # not the main thread (tests); Ctrl-C still works
    try:
        while not stop.is_set():
            stop.wait(0.5)
    except KeyboardInterrupt:
        pass
    print("draining in-flight requests ...", flush=True)
    handle.stop()
    print("server stopped; obs.json persisted")
    return 0


def _cmd_loadgen(args):
    """``repro loadgen``: drive a server with pan/zoom session load.

    Closed-loop (``--users``) or open-loop (``--mode open --rate``);
    ``--align`` snaps viewports to the tile grid so a ``--tile-cache``
    server gets reusable tiles.  Returns 0 when any request succeeded,
    1 otherwise (or on transport errors / missing ``--rate``).
    """
    import json as json_module

    from .server.workload import SessionWorkload

    if args.mode == "open" and not args.rate:
        print("error: --mode open requires --rate", file=sys.stderr)
        return 1
    workload = SessionWorkload(args.url, series=args.series,
                               width=args.width, seed=args.seed,
                               timeout_ms=args.timeout_ms,
                               align=args.align,
                               trace_every=args.trace_every,
                               ingest_rate=args.ingest,
                               ingest_batch=args.ingest_batch,
                               ingest_series=args.ingest_series)
    try:
        report = workload.run(mode=args.mode, users=args.users,
                              rate=args.rate, duration=args.duration)
    except (OSError, ValueError) as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 1
    if args.json:
        print(json_module.dumps(report.as_dict(), indent=2,
                                sort_keys=True))
    else:
        print(report.render())
    return 0 if report.ok else 1


def _cmd_promote(args):
    """``repro promote``: manual failover for a running standby.

    Asks the node at ``--url`` to freeze its applier and become a
    writable primary (``POST /replication/promote``); idempotent on a
    node that is already primary.  Returns 0 on success, 1 when the
    node has no replication role (caught in :func:`main`).
    """
    import json as json_module

    from .server.client import ReproClient

    status = ReproClient(args.url).promote()
    if args.json:
        print(json_module.dumps(status, indent=2, sort_keys=True))
    else:
        print("promoted %s: role=%s epoch=%s head_seq=%s promotions=%s"
              % (args.url, status.get("role"), status.get("epoch"),
                 status.get("head_seq"), status.get("promotions")))
    return 0


def _cmd_ingest(args):
    """``repro ingest``: stream a seeded torture workload into a server.

    Generates batches with :func:`repro.datasets.generate_torture`
    (out-of-order, late and duplicate arrivals) and POSTs them to the
    server's ``/ingest`` endpoint through the client's shared
    :meth:`~repro.server.client.ReproClient.ingest_retry` loop — 429
    sheds wait out a jittered backoff floored at ``Retry-After``, so
    the stream is lossless under backpressure; the summary separates
    sheds from errors.  Returns 0 when every batch was eventually
    acked, 1 otherwise.
    """
    import json as json_module
    import time as time_module

    from .backoff import Backoff
    from .datasets import TortureConfig, generate_torture
    from .server.client import ReproClient

    stream = generate_torture(TortureConfig(
        n_points=args.points, batch_size=args.batch_size,
        out_of_order_fraction=args.ooo_fraction,
        duplicate_fraction=args.dup_fraction,
        max_lag_batches=args.max_lag,
        dataset=args.dataset, seed=args.seed))
    client = ReproClient(args.url)
    backoff = Backoff(base=0.05, cap=2.0)
    interval = (args.batch_size / args.rate) if args.rate > 0 else 0.0
    begin = time_module.monotonic()
    acked = points = errors = 0
    for k, (ts, vs) in enumerate(stream.batches):
        if interval:
            delay = begin + k * interval - time_module.monotonic()
            if delay > 0:
                time_module.sleep(delay)
        try:
            ack = client.ingest_retry(args.series,
                                      [int(t) for t in ts],
                                      [float(v) for v in vs],
                                      tenant=args.tenant,
                                      attempts=1000, backoff=backoff)
        except (OSError, ReproError) as exc:
            errors += 1
            print("error: batch %d failed: %s" % (k, exc),
                  file=sys.stderr)
            continue
        acked += 1
        points += ack["accepted"]
    sheds = client.ingest_retries
    elapsed = time_module.monotonic() - begin
    summary = dict(stream.stats())
    summary.update(series=args.series, batches_acked=acked,
                   points_acked=points, sheds=sheds, errors=errors,
                   seconds=round(elapsed, 3),
                   points_per_second=round(points / elapsed, 1)
                   if elapsed > 0 else 0.0)
    if args.json:
        print(json_module.dumps(summary, indent=2, sort_keys=True))
    else:
        print("streamed %d points in %d batches to %s in %.2fs "
              "(%.0f pts/s) | out-of-order=%d duplicates=%d | "
              "sheds=%d errors=%d"
              % (points, acked, args.series, elapsed,
                 summary["points_per_second"],
                 summary["out_of_order"],
                 summary["duplicates"], sheds, errors))
    return 0 if errors == 0 else 1


def _probe_target(engine, series, what="probe"):
    """``(name, t_qs, t_qe)`` for a local probe query."""
    names = [series] if series else sorted(engine.series_names())
    for name in names:
        chunks = engine.chunks_for(name)
        if chunks:
            return (name, min(c.start_time for c in chunks),
                    max(c.end_time for c in chunks) + 1)
    raise ReproError("no series with data to %s (asked for %r)"
                     % (what, series or "any"))


def _probe_operator(engine):
    """The operator a server would use: tiled when the cache is on."""
    if getattr(engine, "tile_cache", None) is not None:
        from .core.tiles import TiledM4Operator
        return TiledM4Operator(engine)
    from .core.m4lsm import M4LSMOperator
    return M4LSMOperator(engine)


def _render_trace_node(node, indent=0):
    """Span.render for the dict form served by ``GET /trace/<id>``."""
    seconds = node.get("seconds", 0.0)
    parts = ["%s%s  %.3f ms" % ("  " * indent, node.get("name", "?"),
                                seconds * 1e3)]
    attrs = node.get("attrs") or {}
    if attrs:
        parts.append(" ".join("%s=%s" % (k, v)
                              for k, v in sorted(attrs.items())))
    counters = node.get("counters") or {}
    if counters:
        parts.append("[%s]" % " ".join(
            "%s=%d" % (k, v) for k, v in sorted(counters.items())))
    lines = ["  ".join(parts)]
    for child in node.get("children") or []:
        lines.append(_render_trace_node(child, indent + 1))
    return "\n".join(lines)


def _write_chrome_trace(doc, path):
    import json as json_module
    with open(path, "w", encoding="utf-8") as f:
        json_module.dump(doc, f, sort_keys=True)
    print("wrote Chrome trace (%d events) to %s "
          "(open in about:tracing or https://ui.perfetto.dev)"
          % (len(doc.get("traceEvents", [])), path))


def _cmd_trace(args):
    """``repro trace``: request traces, two modes.

    Server mode (``--url``): list the server's retained traces, or
    fetch one by ``--id`` and print its span tree (``--chrome OUT``
    writes Chrome ``trace_event`` JSON instead).

    Local mode (``db``): run one fully-traced probe query against the
    store and print its span tree — the offline way to see lock waits,
    pipeline items and tile lookups without booting a server.
    Returns 0 on success, 1 on usage errors.
    """
    if args.url:
        from .server.client import ReproClient
        client = ReproClient(args.url)
        if args.trace_id:
            if args.chrome:
                _write_chrome_trace(client.trace(args.trace_id,
                                                 fmt="chrome"),
                                    args.chrome)
                return 0
            entry = client.trace(args.trace_id)
            print("%s %s endpoint=%s status=%d %.3f ms sampled=%s"
                  % (entry["request_id"], entry["trace_id"],
                     entry["endpoint"], entry["status"],
                     entry["seconds"] * 1e3, entry["sampled"]))
            print(_render_trace_node(entry["root"]))
            return 0
        listing = client.trace_list(limit=args.limit)
        for row in listing["traces"]:
            print("%-8s %s %-7s %3d %8.3f ms%s"
                  % (row["request_id"], row["trace_id"], row["endpoint"],
                     row["status"], row["seconds"] * 1e3,
                     "  [sampled]" if row["sampled"] else ""))
        store = listing["store"]
        print("retained %d/%d seen (capacity %d)"
              % (store["retained"], store["seen"], store["capacity"]))
        return 0
    if not args.db:
        print("error: need a storage directory or --url",
              file=sys.stderr)
        return 1
    from .obs import make_traceparent, parse_traceparent, to_chrome_trace
    with StorageEngine(_require_store(args.db),
                       _engine_config(args)) as engine:
        if not engine.tracer.enabled:
            print("error: store was opened with metrics disabled",
                  file=sys.stderr)
            return 1
        engine.flush_all()
        name, t_qs, t_qe = _probe_target(engine, args.series,
                                         what="trace")
        ctx = parse_traceparent(make_traceparent(sampled=True))
        root = engine.tracer.root_span("request", endpoint="probe",
                                       request_id="probe",
                                       trace_id=ctx.trace_id)
        with root:
            _probe_operator(engine).query(name, t_qs, t_qe, args.w)
        entry = engine.traces.record(root, ctx.trace_id, "probe",
                                     "probe", 200, sampled=True)
        print(root.render())
        if args.chrome:
            _write_chrome_trace(to_chrome_trace(entry), args.chrome)
    return 0


def _cmd_profile(args):
    """``repro profile``: collapsed-stack wall-clock profile.

    Server mode (``--url``): start the server's sampler, wait
    ``--seconds`` (drive load separately, e.g. ``repro loadgen``),
    stop, and print/write the collapsed stacks.

    Local mode (``db``): sample a probe-query loop against the store.
    Output is one ``frame;frame;frame count`` line per distinct stack
    (pipe into flamegraph.pl).  Returns 0 on success, 1 on usage
    errors.
    """
    import time as time_module

    if args.interval_ms <= 0:
        print("error: --interval-ms must be positive", file=sys.stderr)
        return 1
    if args.url:
        from .server.client import ReproClient
        client = ReproClient(args.url)
        client.profile_start(interval_ms=args.interval_ms)
        time_module.sleep(max(args.seconds, 0.0))
        result = client.profile_stop()
        collapsed = result.get("collapsed", "")
        samples = result.get("profile", {}).get("samples", 0)
    elif args.db:
        from .obs import SamplingProfiler
        with StorageEngine(_require_store(args.db),
                           _engine_config(args)) as engine:
            engine.flush_all()
            name, t_qs, t_qe = _probe_target(engine, args.series,
                                             what="profile")
            operator = _probe_operator(engine)
            profiler = SamplingProfiler(
                interval=args.interval_ms / 1000.0)
            profiler.start()
            end = time_module.monotonic() + max(args.seconds, 0.0)
            while time_module.monotonic() < end:
                operator.query(name, t_qs, t_qe, args.w)
            collapsed = profiler.stop()
            samples = profiler.stats()["samples"]
    else:
        print("error: need a storage directory or --url",
              file=sys.stderr)
        return 1
    if args.out:
        with open(args.out, "w", encoding="utf-8") as f:
            f.write(collapsed + ("\n" if collapsed else ""))
        print("wrote %d collapsed stacks (%d samples) to %s"
              % (len(collapsed.splitlines()), samples, args.out))
    else:
        print(collapsed)
    return 0


def _cmd_bench(args):
    """``repro bench``: the scenario-matrix driver and regression gate.

    ``--matrix`` runs the (optionally ``--cells``-filtered) matrix and
    writes one schema-validated artifact; ``--check`` gates an
    artifact against ``--baseline``.  Both can be combined — CI runs
    ``repro bench --matrix --cells gated --check`` — and the exit code
    is the contract: 0 clean, 1 on any regression, identity failure,
    missing gated cell, or schema-invalid artifact.
    """
    from .bench import (
        compare_artifacts,
        default_matrix,
        load_artifact,
        run_matrix,
        select_cells,
        write_artifact,
    )

    if args.list:
        for cell in select_cells(default_matrix(), pattern=args.cells):
            print("%-55s %s" % (cell.config.cell_id,
                                "[gated]" if cell.gate else ""))
        return 0
    if args.shards_sweep:
        import tempfile

        from .bench import new_artifact
        from .bench.shards import shard_scaling
        points = args.points or int(os.environ.get(
            "REPRO_BENCH_POINTS", "20000"))
        with tempfile.TemporaryDirectory(prefix="repro-shards-") as tmp:
            rows, table = shard_scaling(
                tmp, n_points=points, duration=args.shards_duration,
                progress=lambda msg: print(msg, flush=True))
        write_artifact(args.shards_out,
                       new_artifact("shards", rows, points))
        print(table.render())
        print("wrote %d rows to %s" % (len(rows), args.shards_out))
        return 0
    if not args.matrix and not args.check:
        print("error: nothing to do (pass --matrix, --check, "
              "--shards-sweep or --list)", file=sys.stderr)
        return 1
    current = None
    if args.matrix:
        try:
            current = run_matrix(pattern=args.cells,
                                 points=args.points,
                                 repeats=args.repeats,
                                 progress=lambda msg: print(msg,
                                                            flush=True))
        except ValueError as exc:
            print("error: %s" % exc, file=sys.stderr)
            return 1
        write_artifact(args.out, current)
        print("wrote %d cells to %s" % (len(current["rows"]), args.out))
    if args.check:
        if current is None:
            current = load_artifact(
                args.check if args.check is not True else args.out,
                kind="matrix")
        baseline = load_artifact(args.baseline, kind="matrix")
        report = compare_artifacts(current, baseline,
                                   threshold=args.threshold,
                                   gated_only=not args.all_cells,
                                   wall_mode=args.wall)
        print(report.render())
        return 0 if report.ok else 1
    return 0


_COMMANDS = {
    "generate": _cmd_generate,
    "load": _cmd_load,
    "info": _cmd_info,
    "query": _cmd_query,
    "render": _cmd_render,
    "fsck": _cmd_fsck,
    "compact": _cmd_compact,
    "stats": _cmd_stats,
    "serve": _cmd_serve,
    "promote": _cmd_promote,
    "loadgen": _cmd_loadgen,
    "ingest": _cmd_ingest,
    "trace": _cmd_trace,
    "profile": _cmd_profile,
    "bench": _cmd_bench,
}
