"""Tile cache persistence: CRC32-framed records under the store dir.

The tile cache is *derived* data — every entry can be recomputed from
the TsFiles — so its on-disk format follows the PR-4 rules for
sidecars: every record carries a CRC32, a short or corrupt tail is
truncated with a warning, and *any* damage degrades to recomputation
(a warning, never an error; contrast the data-affecting logs where
mid-file corruption must fail loudly).

File layout (``tiles.cache``)::

    MAGIC                               b"TILEv1\\n\\0"
    manifest record                     JSON: spans_per_tile + fingerprint
    tile record *                       packed spans, LRU order (old first)

Each record is ``<u32 payload_len> payload <u32 crc32(payload)>``.  The
*fingerprint* captures the per-series data version (chunk count, max
chunk version, delete count, max delete version) and the quarantine
set; on load, tiles of any series whose fingerprint changed — and all
tiles when the quarantine or tile geometry changed — are silently
dropped as stale.  The file is written atomically (unique temp + fsync
+ replace), so a crashed writer leaves the previous snapshot intact.
"""

from __future__ import annotations

import json
import os
import struct
import threading
import zlib

from ..storage import faultfs
from .result import SpanAggregate
from .series import Point
from .tiles import TileEntry

#: Sidecar file name inside the store directory.
FILENAME = "tiles.cache"

MAGIC = b"TILEv1\n\0"

_LEN = struct.Struct("<I")
_CRC = struct.Struct("<I")
_U16 = struct.Struct("<H")
_TILE = struct.Struct("<Bq")      # level, tile index
_SPAN = struct.Struct("<qdqdqdqd")  # FP, LP, BP, TP as (t, v) pairs
_RANGE = struct.Struct("<qq")

#: Records above this payload size are rejected as corrupt framing.
_MAX_PAYLOAD = 64 * 1024 * 1024


def _frame(payload):
    return _LEN.pack(len(payload)) + payload + _CRC.pack(
        zlib.crc32(payload))


def _pack_tile(series, level, tile, entry):
    name = series.encode("utf-8")
    parts = [_U16.pack(len(name)), name, _TILE.pack(level, tile),
             _U16.pack(len(entry.spans))]
    for span in entry.spans:
        if span.is_empty():
            parts.append(b"\x00")
        else:
            parts.append(b"\x01")
            parts.append(_SPAN.pack(span.first.t, span.first.v,
                                    span.last.t, span.last.v,
                                    span.bottom.t, span.bottom.v,
                                    span.top.t, span.top.v))
    parts.append(_U16.pack(len(entry.skipped)))
    for lo, hi in entry.skipped:
        parts.append(_RANGE.pack(lo, hi))
    return b"".join(parts)


def _unpack_tile(payload):
    view = memoryview(payload)
    pos = 0

    def take(n):
        nonlocal pos
        if pos + n > len(view):
            raise ValueError("tile record ends mid-field")
        piece = view[pos:pos + n]
        pos += n
        return piece

    (name_len,) = _U16.unpack(take(_U16.size))
    series = bytes(take(name_len)).decode("utf-8")
    level, tile = _TILE.unpack(take(_TILE.size))
    (n_spans,) = _U16.unpack(take(_U16.size))
    spans = []
    for _ in range(n_spans):
        flag = take(1)[0]
        if not flag:
            spans.append(SpanAggregate())
            continue
        ft, fv, lt, lv, bt, bv, tt, tv = _SPAN.unpack(take(_SPAN.size))
        spans.append(SpanAggregate(first=Point(ft, fv), last=Point(lt, lv),
                                   bottom=Point(bt, bv), top=Point(tt, tv)))
    (n_skipped,) = _U16.unpack(take(_U16.size))
    skipped = []
    for _ in range(n_skipped):
        lo, hi = _RANGE.unpack(take(_RANGE.size))
        skipped.append((lo, hi))
    if pos != len(view):
        raise ValueError("%d trailing byte(s) in tile record"
                         % (len(view) - pos))
    result_like = TileEntry(tuple(spans), tuple(skipped), 0)
    # Recompute the byte charge with the live estimator so budgets stay
    # consistent across format versions.
    return series, level, tile, TileEntry.from_result(result_like)


def save_tiles(path, snapshot, fingerprint, spans_per_tile):
    """Atomically write a tile snapshot next to the data files.

    ``snapshot``: ``(series, level, tile, entry)`` tuples in LRU order
    (see :meth:`repro.core.tiles.TileCache.snapshot`).  Best-effort:
    an OSError is swallowed after cleaning up the temp file, mirroring
    the quarantine/obs sidecars — persistence failure must never block
    an engine close.  Returns True when the file was written.
    """
    manifest = json.dumps({"spans_per_tile": int(spans_per_tile),
                           "fingerprint": fingerprint},
                          sort_keys=True).encode("utf-8")
    tmp = "%s.%d.%d.tmp" % (path, os.getpid(), threading.get_ident())
    try:
        with faultfs.fopen(tmp, "wb") as f:
            f.write(MAGIC)
            f.write(_frame(manifest))
            for series, level, tile, entry in snapshot:
                f.write(_frame(_pack_tile(series, level, tile, entry)))
            f.flush()
            faultfs.fsync(f)
        faultfs.replace(tmp, path)
        return True
    except OSError:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        return False


def _iter_records(data, warnings, path):
    """Yield CRC-verified payloads; truncate at the first damage.

    A short tail is the torn-write case (warning, keep the prefix); a
    CRC mismatch or absurd length mid-file also stops the scan with a
    warning — for a derived cache the only response to damage is to
    recompute, so nothing here raises.
    """
    pos = len(MAGIC)
    while pos < len(data):
        if pos + _LEN.size > len(data):
            warnings.append("%s: torn tail (%d trailing byte(s) "
                            "dropped)" % (path, len(data) - pos))
            return
        (length,) = _LEN.unpack_from(data, pos)
        if length > _MAX_PAYLOAD:
            warnings.append("%s: absurd record length %d — dropping "
                            "rest of file" % (path, length))
            return
        end = pos + _LEN.size + length + _CRC.size
        if end > len(data):
            warnings.append("%s: torn tail record (%d byte(s) short)"
                            % (path, end - len(data)))
            return
        payload = data[pos + _LEN.size:end - _CRC.size]
        (crc,) = _CRC.unpack_from(data, end - _CRC.size)
        if zlib.crc32(payload) != crc:
            warnings.append("%s: record checksum mismatch at offset %d "
                            "— dropping rest of file" % (path, pos))
            return
        yield payload
        pos = end


def load_tiles(path, fingerprint, spans_per_tile):
    """Read a tile snapshot, dropping anything stale or damaged.

    ``fingerprint``/``spans_per_tile``: the engine's *current* values;
    pass ``None`` for both to skip staleness filtering (fsck does, it
    only verifies structure).  Returns ``(entries, warnings)`` where
    ``entries`` is a list of ``(series, level, tile, TileEntry)`` in
    file order and ``warnings`` are human-readable damage/staleness
    notes.  Never raises on file damage; a missing file is simply
    ``([], [])``.
    """
    warnings = []
    try:
        with faultfs.fopen(path, "rb") as f:
            data = f.read()
    except FileNotFoundError:
        return [], []
    except OSError as exc:
        return [], ["%s: unreadable tile cache: %s" % (path, exc)]
    if not data.startswith(MAGIC):
        return [], ["%s: bad magic — ignoring tile cache" % path]
    records = _iter_records(data, warnings, path)
    try:
        manifest_raw = next(records)
    except StopIteration:
        return [], warnings or ["%s: missing manifest record" % path]
    try:
        manifest = json.loads(manifest_raw.decode("utf-8"))
        stored_spans = int(manifest["spans_per_tile"])
        stored_fp = manifest["fingerprint"]
    except (ValueError, KeyError, TypeError) as exc:
        return [], ["%s: malformed manifest (%s) — ignoring tile cache"
                    % (path, exc)]
    validate = fingerprint is not None or spans_per_tile is not None
    if validate:
        if spans_per_tile is not None and stored_spans != spans_per_tile:
            return [], ["%s: tile geometry changed (%d -> %s spans/tile) "
                        "— ignoring tile cache"
                        % (path, stored_spans, spans_per_tile)]
        if not isinstance(stored_fp, dict) \
                or stored_fp.get("quarantine") \
                != (fingerprint or {}).get("quarantine"):
            return [], warnings  # quarantine changed: all tiles stale
    fresh_series = (fingerprint or {}).get("series", {}) \
        if validate else None
    stored_series = stored_fp.get("series", {}) \
        if isinstance(stored_fp, dict) else {}
    entries = []
    for payload in records:
        try:
            series, level, tile, entry = _unpack_tile(payload)
        except (ValueError, UnicodeDecodeError) as exc:
            warnings.append("%s: undecodable tile record (%s) — "
                            "dropping rest of file" % (path, exc))
            break
        if validate and stored_series.get(series) \
                != fresh_series.get(series):
            continue  # the series changed since the snapshot: stale
        entries.append((series, level, tile, entry))
    return entries, warnings
