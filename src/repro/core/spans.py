"""M4 time spans (Definition 2.3) with exact integer arithmetic.

A query divides ``[t_qs, t_qe)`` into ``w`` spans
``I_i = [t_qs + D/w * (i-1), t_qs + D/w * i)``.  Timestamps are integers,
so span membership follows the paper's SQL form
``floor(w * (t - t_qs) / D)`` — implemented with integer floor division,
avoiding any float rounding at span boundaries.
"""

from __future__ import annotations

import numpy as np

from ..errors import InvalidQueryRangeError


def validate_query(t_qs, t_qe, w):
    """Raise :class:`InvalidQueryRangeError` on a malformed query."""
    if t_qe <= t_qs:
        raise InvalidQueryRangeError(
            "query range [%s, %s) is empty" % (t_qs, t_qe))
    if w <= 0:
        raise InvalidQueryRangeError("span count w must be positive, got %s"
                                     % w)


def span_index(t, t_qs, t_qe, w):
    """0-based span index of timestamp ``t`` (must be inside the range)."""
    validate_query(t_qs, t_qe, w)
    if not t_qs <= t < t_qe:
        raise InvalidQueryRangeError(
            "timestamp %s outside query range [%s, %s)" % (t, t_qs, t_qe))
    return (t - t_qs) * w // (t_qe - t_qs)


def span_indices(timestamps, t_qs, t_qe, w):
    """Vectorized :func:`span_index` over an int64 array (no bounds check)."""
    t = np.asarray(timestamps, dtype=np.int64)
    return (t - t_qs) * w // (t_qe - t_qs)


def span_bounds(i, t_qs, t_qe, w):
    """Half-open bounds ``[start, end)`` of the 0-based span ``i``.

    Derived from the membership rule: ``span(t) >= i`` iff
    ``t >= t_qs + ceil(i * D / w)``, so spans exactly partition the
    integer timestamps of ``[t_qs, t_qe)``.

    >>> span_bounds(0, 0, 10, 3), span_bounds(1, 0, 10, 3)
    ((0, 4), (4, 7))
    """
    validate_query(t_qs, t_qe, w)
    if not 0 <= i < w:
        raise InvalidQueryRangeError("span index %s outside [0, %s)" % (i, w))
    duration = t_qe - t_qs
    start = t_qs + -((-i * duration) // w)          # ceil(i*D/w)
    end = t_qs + -((-(i + 1) * duration) // w)      # ceil((i+1)*D/w)
    return int(start), int(end)


def all_span_bounds(t_qs, t_qe, w):
    """Int64 array of the ``w + 1`` span boundaries (vectorized)."""
    validate_query(t_qs, t_qe, w)
    i = np.arange(w + 1, dtype=np.int64)
    duration = t_qe - t_qs
    return t_qs + -((-i * duration) // w)


def iter_spans(t_qs, t_qe, w):
    """Yield ``(i, start, end)`` for every non-empty span.

    When ``w`` exceeds the number of integer timestamps in the range some
    spans are empty (``start == end``); they are still yielded so results
    stay aligned with span indices, matching the SQL GROUP BY semantics.
    """
    bounds = all_span_bounds(t_qs, t_qe, w)
    for i in range(w):
        yield i, int(bounds[i]), int(bounds[i + 1])
