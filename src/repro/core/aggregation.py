"""Metadata-accelerated GROUP BY aggregation, after IoTDB's
``GroupByExecutor``.

The same chunk statistics that power M4-LSM answer the classic span
aggregates — ``count``, ``sum``, ``avg``, ``min_value``, ``max_value``,
``min_time``, ``max_time``, ``first_value``, ``last_value`` — without
reading data, whenever a chunk is *uncontested*: fully inside the span,
not overlapping any other chunk, and untouched by deletes.  Contested
chunks fall back to loading their in-span points and merging, exactly as
IoTDB does when a chunk is "modified or overlapped".

Two entry points:

* :func:`aggregate_lsm` — the accelerated operator.
* :func:`aggregate_udf` — the merge-everything baseline (oracle in
  tests, baseline in benches).
"""

from __future__ import annotations

import dataclasses
import math

import numpy as np

from ..errors import QueryError
from ..storage.merge import merge_arrays
from ..storage.overlap import contested_versions
from .spans import all_span_bounds, span_indices, validate_query

#: Supported aggregate function names.
AGGREGATE_NAMES = ("count", "sum", "avg", "min_value", "max_value",
                   "min_time", "max_time", "first_value", "last_value")


@dataclasses.dataclass
class SpanAccumulator:
    """Running aggregate state for one span."""

    count: int = 0
    value_sum: float = 0.0
    min_value: float = math.inf
    max_value: float = -math.inf
    min_time: int = None
    max_time: int = None
    first_value: float = None
    last_value: float = None

    def add_statistics(self, stats):
        """Fold one uncontested chunk's statistics in (no data read)."""
        self.count += stats.count
        self.value_sum += stats.value_sum
        self.min_value = min(self.min_value, stats.bottom.v)
        self.max_value = max(self.max_value, stats.top.v)
        if self.min_time is None or stats.first.t < self.min_time:
            self.min_time = stats.first.t
            self.first_value = stats.first.v
        if self.max_time is None or stats.last.t > self.max_time:
            self.max_time = stats.last.t
            self.last_value = stats.last.v

    def add_arrays(self, t, v):
        """Fold raw in-span points in (the contested-chunk path)."""
        if t.size == 0:
            return
        self.count += int(t.size)
        self.value_sum += float(v.sum())
        self.min_value = min(self.min_value, float(v.min()))
        self.max_value = max(self.max_value, float(v.max()))
        if self.min_time is None or int(t[0]) < self.min_time:
            self.min_time = int(t[0])
            self.first_value = float(v[0])
        if self.max_time is None or int(t[-1]) > self.max_time:
            self.max_time = int(t[-1])
            self.last_value = float(v[-1])

    def get(self, function):
        """The value of one named aggregate (None for an empty span)."""
        if self.count == 0:
            return None
        if function == "count":
            return self.count
        if function == "sum":
            return self.value_sum
        if function == "avg":
            return self.value_sum / self.count
        if function in ("min_value", "max_value", "min_time", "max_time",
                        "first_value", "last_value"):
            return getattr(self, function)
        raise QueryError("unknown aggregate %r" % function)


@dataclasses.dataclass(frozen=True)
class AggregateResult:
    """Per-span values for the requested aggregate functions."""

    t_qs: int
    t_qe: int
    w: int
    functions: tuple
    rows: tuple  # one tuple per span, aligned with `functions`

    def __len__(self):
        return self.w

    def column(self, function):
        """All spans' values of one aggregate."""
        try:
            index = self.functions.index(function)
        except ValueError:
            raise QueryError("aggregate %r was not computed"
                             % function) from None
        return [row[index] for row in self.rows]

    def non_empty(self):
        """Indices of spans holding data."""
        return [i for i, row in enumerate(self.rows)
                if any(cell is not None for cell in row)]


def _validate_functions(functions):
    functions = tuple(f.lower() for f in functions)
    for function in functions:
        if function not in AGGREGATE_NAMES:
            raise QueryError("unknown aggregate %r (supported: %s)"
                             % (function, ", ".join(AGGREGATE_NAMES)))
    return functions


def aggregate_udf(engine, series, t_qs, t_qe, w, functions):
    """Baseline: merge every overlapping chunk, then group and fold."""
    functions = _validate_functions(functions)
    validate_query(t_qs, t_qe, w)
    deletes = engine.deletes_for(series)
    reader = engine.data_reader()
    chunks = [(*reader.load_chunk(meta), meta.version)
              for meta in engine.metadata_reader(series)
              .chunks_overlapping(t_qs, t_qe)]
    t, v = merge_arrays(chunks, deletes)
    lo = int(np.searchsorted(t, t_qs, side="left"))
    hi = int(np.searchsorted(t, t_qe, side="left"))
    t, v = t[lo:hi], v[lo:hi]
    accumulators = [SpanAccumulator() for _ in range(w)]
    if t.size:
        spans = span_indices(t, t_qs, t_qe, w)
        occupied, starts = np.unique(spans, return_index=True)
        ends = np.append(starts[1:], t.size)
        for span, start, end in zip(occupied, starts, ends):
            accumulators[int(span)].add_arrays(t[start:end], v[start:end])
    return _materialize(accumulators, t_qs, t_qe, w, functions)


def aggregate_lsm(engine, series, t_qs, t_qe, w, functions):
    """Metadata-accelerated aggregation.

    Uncontested chunks fully inside a span contribute their statistics;
    all other in-span data is loaded once per span (delete-filtered and
    version-merged) and folded in as raw arrays.
    """
    functions = _validate_functions(functions)
    validate_query(t_qs, t_qe, w)
    deletes = engine.deletes_for(series)
    reader = engine.data_reader()
    chunks = engine.metadata_reader(series).chunks_overlapping(t_qs, t_qe)
    contested = contested_versions(chunks, deletes)
    bounds = all_span_bounds(t_qs, t_qe, w)
    duration = t_qe - t_qs

    per_span = [[] for _ in range(w)]
    for meta in chunks:
        lo = max(meta.start_time, t_qs)
        hi = min(meta.end_time, t_qe - 1)
        first_span = int((lo - t_qs) * w // duration)
        last_span = int((hi - t_qs) * w // duration)
        for i in range(first_span, last_span + 1):
            per_span[i].append(meta)

    accumulators = [SpanAccumulator() for _ in range(w)]
    for i in range(w):
        start, end = int(bounds[i]), int(bounds[i + 1])
        if start >= end or not per_span[i]:
            continue
        accumulator = accumulators[i]
        leftovers = []
        for meta in per_span[i]:
            stats = meta.statistics
            if meta.version not in contested and stats.inside(start, end):
                accumulator.add_statistics(stats)
            else:
                leftovers.append(meta)
        if leftovers:
            arrays = [(*reader.load_chunk(meta, deletes=deletes,
                                          time_range=(start, end)),
                       meta.version) for meta in leftovers]
            t, v = merge_arrays(arrays)
            accumulator.add_arrays(t, v)
    return _materialize(accumulators, t_qs, t_qe, w, functions)


def _materialize(accumulators, t_qs, t_qe, w, functions):
    rows = tuple(tuple(acc.get(f) for f in functions)
                 for acc in accumulators)
    return AggregateResult(int(t_qs), int(t_qe), int(w), functions, rows)
