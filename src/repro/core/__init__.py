"""Core: the time series model, M4 representation and the M4-LSM operator."""

from .aggregation import (
    AGGREGATE_NAMES,
    AggregateResult,
    aggregate_lsm,
    aggregate_udf,
)
from .m4 import M4UDFOperator, m4_aggregate_arrays, m4_aggregate_series
from .m4lsm import M4LSMOperator
from .result import M4Result, SpanAggregate
from .series import Point, TimeSeries, concat_series
from .spans import all_span_bounds, iter_spans, span_bounds, span_index
from .tiles import (
    TileCache,
    TiledM4Operator,
    TileEntry,
    snap_viewport,
    tile_eligible,
)

__all__ = [
    "AGGREGATE_NAMES",
    "AggregateResult",
    "M4LSMOperator",
    "M4Result",
    "M4UDFOperator",
    "Point",
    "SpanAggregate",
    "TileCache",
    "TileEntry",
    "TiledM4Operator",
    "TimeSeries",
    "aggregate_lsm",
    "aggregate_udf",
    "all_span_bounds",
    "concat_series",
    "iter_spans",
    "m4_aggregate_arrays",
    "m4_aggregate_series",
    "snap_viewport",
    "span_bounds",
    "span_index",
    "tile_eligible",
]
