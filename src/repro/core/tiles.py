"""Multi-resolution M4 tile cache: pan/zoom-aware viewport acceleration.

Interactive exploration (the paper's Section 1 motivation) issues M4
queries whose viewports overlap heavily: a pan shifts the window by half
its width, a zoom divides it by a power of the zoom factor.  Re-running
the full M4-LSM operator per viewport recomputes 75-90% of the spans the
previous frame already solved.  This module memoizes that shared work as
*tiles* without changing a single output byte.

Key scheme
----------

A viewport query ``(t_qs, t_qe, w)`` is *tile-eligible* when its spans
all have the same integer width ``s = (t_qe - t_qs) / w``, ``s`` is a
power of two, and ``t_qs`` is a multiple of ``s``.  Then every span is a
cell ``[m*s, (m+1)*s)`` of the absolute level-``z`` grid (``s = 2**z``),
shared by *all* eligible queries at that zoom level regardless of their
start or width.  A *tile* is ``T`` consecutive cells (``T =
spans_per_tile``): tile ``k`` of level ``z`` covers
``[k*T*s, (k+1)*T*s)``.  The cache key is ``(series, z, k)``.

An eligible viewport decomposes into interior tiles plus at most two
partial edge runs of cells (head and tail).  Interior tiles are answered
from the cache (computed once, each via one ``M4LSMOperator`` query over
exactly the tile's range); edge runs are computed per query and never
cached.  Ineligible queries bypass the cache entirely.

Identity argument (sketch; the full version is DESIGN.md §10)
-------------------------------------------------------------

For a query whose spans are uniform cells, ``span_bounds`` of any
sub-range query over whole cells coincide with the enclosing query's
bounds cell-for-cell.  A ``SpanAggregate`` is a function of the span's
``[start, end)``, the chunks overlapping it (in version order), the
series' full delete list and the quarantine set — none of which depend
on the enclosing query's extent.  (The fused-metadata fast path may be
taken for a span in one decomposition and the solver in another, but the
repo's ablation tests assert fused == solver byte-for-byte, so the
answer is decomposition-independent.)  Hence stitching per-cell
aggregates from tiles and edge runs reproduces the uncached result
exactly; the degraded ``skipped`` ranges re-merge to the same canonical
tuple because tiles partition the query range.

Invalidation
------------

Writes and deletes invalidate overlapping tiles *while holding the
series write lock* (see ``StorageEngine``), so a query that holds the
series read lock across its stitch can never observe a half-invalidated
cache.  Quarantine changes arrive from reader threads (no write lock);
the insert-epoch check below closes that race: a tile computed before an
overlapping invalidation is discarded instead of inserted.

*Tail appends* (every new timestamp strictly past the series' previous
maximum — the streaming-ingest common case) take a cheaper path: instead
of dropping overlapping tiles, :meth:`TileCache.mark_dirty` records the
appended range on each one, and the tiled operator recomputes *only the
dirty cells* on the next lookup (``TiledM4Operator._repair``), splicing
them into the retained spans.  Because an append past the old maximum
cannot change any data outside the appended range, the clean cells'
aggregates are provably unchanged and the repaired tile is
byte-identical to a full recompute (DESIGN.md §13).  Interior,
out-of-order and delete writes keep the full overlap-drop.

Lock ordering: the cache's internal lock is a *leaf* — no series or
engine lock is ever acquired while holding it.
"""

from __future__ import annotations

import collections
import dataclasses
import threading

from ..obs.tracer import ambient_span, tracer_of
from ..storage.deadline import check_deadline
from .m4lsm import M4LSMOperator
from .result import M4Result, merge_time_ranges
from .spans import validate_query

#: Per-series invalidation log length; inserts whose epoch predates the
#: oldest retained entry are discarded (conservative, never stale).
_INVALIDATION_LOG = 256

#: Rough per-object byte costs used for the LRU budget.  They only need
#: to be a consistent charge, not an exact ``sys.getsizeof`` walk.
_ENTRY_BYTES = 240       # TileEntry + dict/key/LRU bookkeeping
_SPAN_BYTES = 72         # one SpanAggregate shell
_POINT_BYTES = 72        # one Point (t, v)
_RANGE_BYTES = 48        # one skipped (lo, hi) pair


def tile_eligible(t_qs, t_qe, w):
    """Is the viewport on a cacheable power-of-two span grid?

    Returns the zoom level ``z`` (span width ``2**z``) or ``None`` when
    the query must bypass the cache.  Eligible means: the duration is an
    exact multiple of ``w``, the span width is a power of two, and
    ``t_qs`` sits on the absolute grid of that width.
    """
    duration = int(t_qe) - int(t_qs)
    w = int(w)
    if w <= 0 or duration <= 0 or duration % w:
        return None
    s = duration // w
    if s & (s - 1):
        return None
    if int(t_qs) % s:
        return None
    return s.bit_length() - 1


def snap_viewport(t_qs, t_qe, w, tile_spans=None):
    """The smallest tile-eligible viewport covering ``[t_qs, t_qe)``.

    Returns ``(start, end)`` with ``end - start == w * 2**z`` for the
    smallest ``z`` such that the snapped window still contains the
    requested one, and ``start`` aligned to the span grid (or to the
    tile grid when ``tile_spans`` is given, so the viewport decomposes
    into whole tiles with no edge runs).  Used by the session workload
    and the E15 bench to emit cacheable pan/zoom traces.

    Raises :class:`repro.errors.InvalidQueryRangeError` on an empty
    range or non-positive ``w``.
    """
    t_qs, t_qe, w = int(t_qs), int(t_qe), int(w)
    validate_query(t_qs, t_qe, w)
    grain = int(tile_spans) if tile_spans else 1
    s = 1
    while True:
        unit = s * grain
        start = (t_qs // unit) * unit
        if start + w * s >= t_qe:
            return start, start + w * s
        s <<= 1


@dataclasses.dataclass(frozen=True)
class TileEntry:
    """One cached tile: its spans, degraded ranges and byte charge."""

    spans: tuple        # T SpanAggregates, cell order
    skipped: tuple      # canonical (lo, hi) ranges within the tile
    nbytes: int
    #: merged half-open time ranges whose cells must be recomputed
    #: before the tile can be served (tail-append dirt; () = clean).
    dirty: tuple = ()

    @classmethod
    def from_result(cls, result):
        """Build an entry from the tile's :class:`M4Result`."""
        nbytes = _ENTRY_BYTES + _RANGE_BYTES * len(result.skipped)
        for span in result.spans:
            nbytes += _SPAN_BYTES
            if not span.is_empty():
                nbytes += 4 * _POINT_BYTES
        return cls(tuple(result.spans), tuple(result.skipped), nbytes)

    def with_dirty(self, lo, hi):
        """A copy with ``[lo, hi)`` merged into the dirty ranges."""
        dirty = merge_time_ranges(list(self.dirty) + [(int(lo), int(hi))])
        nbytes = self.nbytes \
            + _RANGE_BYTES * (len(dirty) - len(self.dirty))
        return dataclasses.replace(self, dirty=dirty, nbytes=nbytes)


class TileCache:
    """A byte-budgeted LRU of M4 tiles with epoch-checked inserts.

    Args:
        capacity_bytes: LRU budget (estimated object bytes, > 0).
        spans_per_tile: cells per tile, ``T`` in the key scheme (> 0).
        metrics: optional :class:`repro.obs.MetricsRegistry`; receives
            ``tile_cache_{hits,misses,invalidations,evictions,
            rejected_inserts,bypass}_total`` counters and
            ``tile_cache_{bytes,tiles}`` gauges.

    Thread-safe; the single internal lock is a leaf of the engine's
    lock hierarchy (never held while acquiring a series/engine lock).
    """

    def __init__(self, capacity_bytes, spans_per_tile=64, metrics=None):
        if capacity_bytes <= 0:
            raise ValueError("capacity_bytes must be positive")
        if spans_per_tile <= 0:
            raise ValueError("spans_per_tile must be positive")
        from ..obs import NULL_REGISTRY
        metrics = metrics if metrics is not None else NULL_REGISTRY
        self._capacity = int(capacity_bytes)
        self._spans_per_tile = int(spans_per_tile)
        self._lock = threading.Lock()
        self._entries = collections.OrderedDict()  # key -> TileEntry
        self._by_series = {}                       # series -> set of keys
        self._bytes = 0
        self._generation = 0      # bumped by invalidate_all()
        self._seq = {}            # series -> last invalidation seq
        self._log = {}            # series -> deque of (seq, lo, hi)
        self._dropped = {}        # series -> highest seq fallen off log
        self._c_hits = metrics.counter("tile_cache_hits_total")
        self._c_misses = metrics.counter("tile_cache_misses_total")
        self._c_inval = metrics.counter("tile_cache_invalidations_total")
        self._c_dirty = metrics.counter("tile_cache_dirty_marks_total")
        self._c_repair = metrics.counter("tile_cache_cell_repairs_total")
        self._c_evict = metrics.counter("tile_cache_evictions_total")
        self._c_reject = metrics.counter("tile_cache_rejected_inserts_total")
        self._c_bypass = metrics.counter("tile_cache_bypass_total")
        self._g_bytes = metrics.gauge("tile_cache_bytes")
        self._g_tiles = metrics.gauge("tile_cache_tiles")

    @property
    def spans_per_tile(self):
        """Cells per tile (``T`` of the key scheme)."""
        return self._spans_per_tile

    @property
    def capacity_bytes(self):
        """The LRU byte budget."""
        return self._capacity

    def tile_range(self, level, tile):
        """Half-open time range ``[lo, hi)`` of a tile key."""
        width = (1 << level) * self._spans_per_tile
        return tile * width, (tile + 1) * width

    def __len__(self):
        with self._lock:
            return len(self._entries)

    @property
    def bytes(self):
        """Estimated bytes currently cached."""
        return self._bytes

    # -- lookup / insert ---------------------------------------------------------------

    def lookup(self, series, level, tile):
        """The cached :class:`TileEntry`, or None (counts hit/miss)."""
        key = (series, level, tile)
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._c_misses.inc()
                return None
            self._entries.move_to_end(key)
            self._c_hits.inc()
            return entry

    def epoch(self, series):
        """Opaque insert token; take *before* reading the tile's data.

        :meth:`insert` discards the tile if any overlapping
        invalidation arrived after this epoch, so a computation racing
        an invalidation can never plant a stale tile.
        """
        with self._lock:
            return self._generation, self._seq.get(series, 0)

    def insert(self, series, level, tile, entry, epoch):
        """Insert a computed tile unless an invalidation raced it.

        ``epoch`` must come from :meth:`epoch` on the same series
        before the tile's source data was read.  Returns True when the
        tile was actually cached.
        """
        generation, seq = epoch
        lo, hi = self.tile_range(level, tile)
        key = (series, level, tile)
        with self._lock:
            if generation != self._generation:
                self._c_reject.inc()
                return False
            if seq < self._dropped.get(series, 0):
                self._c_reject.inc()  # log too short to prove safety
                return False
            for inv_seq, inv_lo, inv_hi in self._log.get(series, ()):
                if inv_seq > seq and inv_lo < hi and lo < inv_hi:
                    self._c_reject.inc()
                    return False
            if entry.nbytes > self._capacity:
                return False
            if key in self._entries:
                self._remove_locked(key)
            while self._bytes + entry.nbytes > self._capacity \
                    and self._entries:
                old_key = next(iter(self._entries))
                self._remove_locked(old_key)
                self._c_evict.inc()
            self._entries[key] = entry
            self._by_series.setdefault(series, set()).add(key)
            self._bytes += entry.nbytes
            self._publish_locked()
            return True

    def _remove_locked(self, key):
        entry = self._entries.pop(key)
        self._bytes -= entry.nbytes
        keys = self._by_series.get(key[0])
        if keys is not None:
            keys.discard(key)
            if not keys:
                del self._by_series[key[0]]
        return entry

    def _publish_locked(self):
        self._g_bytes.set(self._bytes)
        self._g_tiles.set(len(self._entries))

    # -- invalidation ------------------------------------------------------------------

    def invalidate(self, series, lo, hi):
        """Drop the series' tiles overlapping ``[lo, hi)`` at any level.

        Records the event so in-flight computations that started before
        it cannot insert afterwards.  Returns the number of tiles
        dropped.
        """
        lo, hi = int(lo), int(hi)
        if hi <= lo:
            return 0
        dropped = 0
        with self._lock:
            self._note_locked(series, lo, hi)
            for key in list(self._by_series.get(series, ())):
                t_lo, t_hi = self.tile_range(key[1], key[2])
                if t_lo < hi and lo < t_hi:
                    self._remove_locked(key)
                    dropped += 1
            if dropped:
                self._c_inval.inc(dropped)
                self._publish_locked()
        return dropped

    def mark_dirty(self, series, lo, hi):
        """Tail-append path: keep overlapping tiles, dirty their cells.

        Instead of dropping every tile overlapping ``[lo, hi)`` (what
        :meth:`invalidate` does), the range is merged into each
        overlapping entry's ``dirty`` ranges; the tiled operator
        recomputes only the dirty cells on the next lookup and reuses
        the rest of the tile verbatim.  Sound *only* when every
        timestamp in ``[lo, hi)`` is strictly after every point the
        series held before (a pure tail append): then cells outside the
        range still aggregate exactly the same data.  Interior or
        out-of-order writes must keep using :meth:`invalidate`.

        The event is still recorded in the invalidation log, so a
        racing whole-tile computation that read pre-append data cannot
        insert afterwards.  Returns the number of tiles dirtied.
        """
        lo, hi = int(lo), int(hi)
        if hi <= lo:
            return 0
        dirtied = 0
        with self._lock:
            self._note_locked(series, lo, hi)
            for key in list(self._by_series.get(series, ())):
                t_lo, t_hi = self.tile_range(key[1], key[2])
                if t_lo < hi and lo < t_hi:
                    entry = self._entries[key]
                    fresh = entry.with_dirty(max(lo, t_lo), min(hi, t_hi))
                    self._entries[key] = fresh
                    self._bytes += fresh.nbytes - entry.nbytes
                    dirtied += 1
            if dirtied:
                self._c_dirty.inc(dirtied)
                self._publish_locked()
        return dirtied

    def count_repairs(self, cells):
        """Count ``cells`` incrementally recomputed cells (obs only)."""
        self._c_repair.inc(cells)

    def invalidate_series(self, series):
        """Drop every tile of one series (compaction, re-ingest)."""
        dropped = 0
        with self._lock:
            self._note_locked(series, None, None)
            for key in list(self._by_series.get(series, ())):
                self._remove_locked(key)
                dropped += 1
            if dropped:
                self._c_inval.inc(dropped)
                self._publish_locked()
        return dropped

    def invalidate_all(self):
        """Drop everything and fence out every in-flight insert."""
        with self._lock:
            dropped = len(self._entries)
            self._entries.clear()
            self._by_series.clear()
            self._bytes = 0
            self._generation += 1
            if dropped:
                self._c_inval.inc(dropped)
            self._publish_locked()
        return dropped

    def _note_locked(self, series, lo, hi):
        """Append an invalidation event to the bounded per-series log."""
        seq = self._seq.get(series, 0) + 1
        self._seq[series] = seq
        log = self._log.get(series)
        if log is None:
            log = self._log[series] = collections.deque(
                maxlen=_INVALIDATION_LOG)
        if len(log) == log.maxlen:
            self._dropped[series] = log[0][0]
        if lo is None:                        # whole-series event
            lo, hi = -(1 << 63), 1 << 63
        log.append((seq, lo, hi))

    def count_bypass(self):
        """Count one cache-ineligible query (obs only)."""
        self._c_bypass.inc()

    def stats(self):
        """Dict of tiles, bytes and capacity (counters live in obs)."""
        with self._lock:
            return {"tiles": len(self._entries), "bytes": self._bytes,
                    "capacity_bytes": self._capacity,
                    "spans_per_tile": self._spans_per_tile}

    def snapshot(self):
        """LRU-ordered list of ``(series, level, tile, entry)`` tuples
        (oldest first) — the persistence layer's view of the cache."""
        with self._lock:
            return [(k[0], k[1], k[2], e) for k, e in self._entries.items()]


class TiledM4Operator:
    """M4-LSM behind the tile cache — same answers, warmed spans free.

    Drop-in for :class:`M4LSMOperator`: eligible viewports are stitched
    from cached tiles plus at most two edge runs; everything else (and
    every query when the cache is absent or the degraded mode differs
    from the engine default the tiles were computed under) falls through
    to the plain operator, so results are byte-identical either way.

    Args:
        engine: a :class:`repro.storage.engine.StorageEngine`.
        cache: an explicit :class:`TileCache`; defaults to
            ``engine.tile_cache``.
        degraded: as for :class:`M4LSMOperator`; a value that differs
            from ``engine.config.degraded_reads`` forces bypass (cached
            tiles reflect the engine-default damage policy).
    """

    name = "M4-LSM(tiles)"

    def __init__(self, engine, cache=None, degraded=None):
        self._engine = engine
        self._cache = cache if cache is not None \
            else getattr(engine, "tile_cache", None)
        self._inner = M4LSMOperator(engine, degraded=degraded)
        effective = degraded if degraded is not None \
            else getattr(engine.config, "degraded_reads", True)
        self._bypass = effective != getattr(engine.config,
                                            "degraded_reads", True)

    def query(self, series_name, t_qs, t_qe, w):
        """The M4 representation query; returns :class:`M4Result`.

        Byte-identical to ``M4LSMOperator.query`` on the same engine
        state.  The whole stitch holds the series read lock, so a
        concurrent write/delete (and its tile invalidation) orders
        entirely before or after this query — the PR-2 linearizability
        guarantee extends to cached reads.

        Raises :class:`repro.errors.InvalidQueryRangeError` on a
        malformed range, :class:`repro.errors.SeriesNotFoundError` for
        an unknown series, and in strict mode
        :class:`repro.errors.CorruptFileError` on damaged data.
        """
        validate_query(t_qs, t_qe, w)
        cache = self._cache
        level = None if cache is None or self._bypass \
            else tile_eligible(t_qs, t_qe, w)
        if level is None:
            if cache is not None:
                cache.count_bypass()
            return self._inner.query(series_name, t_qs, t_qe, w)
        s = 1 << level
        per_tile = cache.spans_per_tile
        spans = []
        skipped = []
        hits = misses = repairs = 0
        with tracer_of(self._engine).span("tiles.stitch",
                                          series=series_name,
                                          level=level) as stitch, \
                self._engine.series_lock(series_name).read():
            cell = int(t_qs) // s
            last_cell = int(t_qe) // s
            while cell < last_cell:
                check_deadline()  # cancellation point: between pieces
                tile = cell // per_tile
                tile_start = tile * per_tile
                tile_end = tile_start + per_tile
                if cell == tile_start and tile_end <= last_cell:
                    with ambient_span("tiles.tile", level=level,
                                      tile=tile) as tile_span:
                        # Epoch *before* lookup: any entry the lookup
                        # returns already reflects every invalidation
                        # before the epoch, and any event after it
                        # rejects the (re)insert below.
                        epoch = cache.epoch(series_name)
                        entry = cache.lookup(series_name, level, tile)
                        hit = entry is not None
                        repaired = 0
                        if entry is None:
                            result = self._inner.query(
                                series_name, tile_start * s, tile_end * s,
                                per_tile)
                            entry = TileEntry.from_result(result)
                            cache.insert(series_name, level, tile, entry,
                                         epoch)
                        elif entry.dirty:
                            entry, repaired = self._repair(
                                series_name, level, tile, entry, epoch,
                                s, tile_start, tile_end)
                        tile_span.attrs["hit"] = hit
                        if repaired:
                            tile_span.attrs["repaired_cells"] = repaired
                    hits += hit
                    misses += not hit
                    repairs += repaired
                    spans.extend(entry.spans)
                    skipped.extend(entry.skipped)
                    cell = tile_end
                else:  # partial edge run (head or tail, never cached)
                    run_end = min(tile_end, last_cell)
                    with ambient_span("tiles.edge", level=level,
                                      start=cell, end=run_end):
                        result = self._inner.query(
                            series_name, cell * s,
                            run_end * s, run_end - cell)
                    spans.extend(result.spans)
                    skipped.extend(result.skipped)
                    cell = run_end
            stitch.attrs["hits"] = hits
            stitch.attrs["misses"] = misses
            if repairs:
                stitch.attrs["repaired_cells"] = repairs
        return M4Result(int(t_qs), int(t_qe), int(w), tuple(spans),
                        skipped=merge_time_ranges(skipped, t_qs, t_qe))

    def _repair(self, series_name, level, tile, entry, epoch, s,
                tile_start, tile_end):
        """Recompute only a dirty tile's dirty cells; reuse the rest.

        The caller holds the series read lock, so the data under every
        cell is frozen for the duration.  Tail-append dirt (see
        :meth:`TileCache.mark_dirty`) only ever adds points inside the
        dirty ranges, so the clean cells' aggregates are still exact;
        recomputing just the dirty cells with the inner operator
        therefore reproduces a full-tile computation byte-for-byte.

        Returns ``(clean_entry, cells_recomputed)``.  The repaired
        entry is reinserted under ``epoch`` (discarded if another
        invalidation raced, e.g. a further append mid-repair — the
        result served to *this* query is still correct because the data
        it read is lock-frozen).
        """
        cache = self._cache
        lo_t, hi_t = tile_start * s, tile_end * s
        spans = list(entry.spans)
        skipped = list(entry.skipped)
        recomputed = 0
        for d_lo, d_hi in entry.dirty:
            c0 = max(d_lo // s, tile_start)
            c1 = min(-(-d_hi // s), tile_end)
            if c1 <= c0:
                continue
            result = self._inner.query(series_name, c0 * s, c1 * s,
                                       c1 - c0)
            spans[c0 - tile_start:c1 - tile_start] = result.spans
            # Splice skipped ranges: keep the parts of the old ranges
            # outside the recomputed window, take the fresh computation
            # inside it.
            kept = []
            for a, b in skipped:
                if a < c0 * s:
                    kept.append((a, min(b, c0 * s)))
                if b > c1 * s:
                    kept.append((max(a, c1 * s), b))
            skipped = kept + list(result.skipped)
            recomputed += c1 - c0
        fresh = TileEntry.from_result(M4Result(
            lo_t, hi_t, tile_end - tile_start, tuple(spans),
            skipped=merge_time_ranges(skipped, lo_t, hi_t)))
        cache.insert(series_name, level, tile, fresh, epoch)
        cache.count_repairs(recomputed)
        return fresh, recomputed

    def query_traced(self, series_name, t_qs, t_qe, w):
        """EXPLAIN path: always uncached (the trace describes the
        solver's work, which a cache hit would hide)."""
        return self._inner.query_traced(series_name, t_qs, t_qe, w)
