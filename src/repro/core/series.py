"""Time series data model: points and ordered series.

A time series follows Definition 2.1 of the paper: a sequence of
``(timestamp, value)`` pairs in strictly increasing order of time.
Timestamps are int64 (e.g. epoch milliseconds) and values float64,
matching the columns the storage engine persists.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..errors import ReproError


@dataclasses.dataclass(frozen=True, order=True)
class Point:
    """A single data point ``(t, v)``.

    Ordering compares time first and value second, which makes a sorted
    list of points time-ordered, the convention used throughout the paper.
    """

    t: int
    v: float

    def __iter__(self):
        return iter((self.t, self.v))


class TimeSeries:
    """An immutable, time-ordered series backed by numpy arrays.

    The constructor validates the paper's ordering invariant (strictly
    increasing timestamps: a series holds at most one point per time).

    >>> series = TimeSeries([1, 2, 5], [10.0, 20.0, 50.0])
    >>> len(series), series.first().t, series.last().v
    (3, 1, 50.0)
    """

    __slots__ = ("_timestamps", "_values")

    def __init__(self, timestamps, values, validate=True):
        t = np.ascontiguousarray(timestamps, dtype=np.int64)
        v = np.ascontiguousarray(values, dtype=np.float64)
        if t.ndim != 1 or v.ndim != 1:
            raise ReproError("timestamps and values must be 1-D")
        if t.size != v.size:
            raise ReproError(
                "timestamps (%d) and values (%d) differ in length"
                % (t.size, v.size))
        if validate and t.size > 1 and not bool(np.all(np.diff(t) > 0)):
            raise ReproError("timestamps must be strictly increasing")
        t.setflags(write=False)
        v.setflags(write=False)
        self._timestamps = t
        self._values = v

    # -- construction helpers -------------------------------------------------

    @classmethod
    def from_points(cls, points):
        """Build a series from an iterable of :class:`Point` (or pairs),
        sorting by time and rejecting duplicate timestamps."""
        pairs = sorted((p.t, p.v) if isinstance(p, Point) else tuple(p)
                       for p in points)
        timestamps = np.array([t for t, _ in pairs], dtype=np.int64)
        values = np.array([v for _, v in pairs], dtype=np.float64)
        return cls(timestamps, values)

    @classmethod
    def empty(cls):
        """An empty series."""
        return cls(np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float64),
                   validate=False)

    # -- accessors -------------------------------------------------------------

    @property
    def timestamps(self):
        """Read-only int64 array of timestamps."""
        return self._timestamps

    @property
    def values(self):
        """Read-only float64 array of values."""
        return self._values

    def __len__(self):
        return self._timestamps.size

    def __bool__(self):
        return self._timestamps.size > 0

    def __getitem__(self, index):
        if isinstance(index, slice):
            return TimeSeries(self._timestamps[index], self._values[index],
                              validate=False)
        return Point(int(self._timestamps[index]), float(self._values[index]))

    def __iter__(self):
        for t, v in zip(self._timestamps, self._values):
            yield Point(int(t), float(v))

    def __eq__(self, other):
        if not isinstance(other, TimeSeries):
            return NotImplemented
        return (np.array_equal(self._timestamps, other._timestamps)
                and np.array_equal(self._values, other._values, equal_nan=True))

    def __repr__(self):
        if not self:
            return "TimeSeries(empty)"
        return "TimeSeries(n=%d, t=[%d, %d])" % (
            len(self), self.first().t, self.last().t)

    # -- representation points (Definition 2.1) ---------------------------------

    def first(self):
        """``FP(T)``: the point with minimal time."""
        self._require_non_empty("first")
        return self[0]

    def last(self):
        """``LP(T)``: the point with maximal time."""
        self._require_non_empty("last")
        return self[-1]

    def bottom(self):
        """``BP(T)``: a point with minimal value (earliest such point)."""
        self._require_non_empty("bottom")
        return self[int(np.argmin(self._values))]

    def top(self):
        """``TP(T)``: a point with maximal value (earliest such point)."""
        self._require_non_empty("top")
        return self[int(np.argmax(self._values))]

    # -- slicing ----------------------------------------------------------------

    def slice_time(self, t_start, t_end):
        """Return the sub-series with timestamps in ``[t_start, t_end)``."""
        lo = int(np.searchsorted(self._timestamps, t_start, side="left"))
        hi = int(np.searchsorted(self._timestamps, t_end, side="left"))
        return self[lo:hi]

    def slice_time_closed(self, t_start, t_end):
        """Return the sub-series with timestamps in ``[t_start, t_end]``."""
        lo = int(np.searchsorted(self._timestamps, t_start, side="left"))
        hi = int(np.searchsorted(self._timestamps, t_end, side="right"))
        return self[lo:hi]

    def time_range(self):
        """``(first time, last time)`` of a non-empty series."""
        self._require_non_empty("time_range")
        return int(self._timestamps[0]), int(self._timestamps[-1])

    def contains_time(self, t):
        """True if some point has timestamp exactly ``t``."""
        pos = int(np.searchsorted(self._timestamps, t, side="left"))
        return pos < len(self) and int(self._timestamps[pos]) == int(t)

    def _require_non_empty(self, operation):
        if not self:
            raise ReproError("%s() on an empty series" % operation)


def concat_series(parts):
    """Concatenate time-ordered, non-overlapping series into one.

    Raises if consecutive parts overlap in time; use the storage layer's
    merge for overlapping data.
    """
    parts = [p for p in parts if len(p)]
    if not parts:
        return TimeSeries.empty()
    timestamps = np.concatenate([p.timestamps for p in parts])
    values = np.concatenate([p.values for p in parts])
    return TimeSeries(timestamps, values)
