"""Binary-search chunk index: the ablation baseline for step regression.

Answers the same three operations as
:class:`repro.core.index.chunk_index.ChunkIndex` but without any learned
model: it binary-searches the page directory (page start times are free
metadata), decodes the single candidate page, and binary-searches inside.

Compared with step regression this always decodes at least one page and
probes ``O(log pages)`` directory entries, whereas a well-fitted step
regression jumps straight to the right rows; the E10 ablation bench
quantifies the difference.
"""

from __future__ import annotations

import numpy as np


class BinarySearchIndex:
    """Exact chunk lookups by binary search over the page directory.

    Args:
        page_row_starts: int array, first global row of each page.
        page_start_times: int array, first timestamp of each page.
        n_rows: total points in the chunk.
        first_time / last_time: the chunk's time interval.
        read_page_timestamps: callable ``page_idx -> int64 array``.
        on_lookup: optional counter callback, one call per operation.
    """

    def __init__(self, page_row_starts, page_start_times, n_rows,
                 first_time, last_time, read_page_timestamps, on_lookup=None):
        self._page_row_starts = np.asarray(page_row_starts, dtype=np.int64)
        self._page_start_times = np.asarray(page_start_times, dtype=np.int64)
        self._n_rows = int(n_rows)
        self._first_time = int(first_time)
        self._last_time = int(last_time)
        self._read_page = read_page_timestamps
        self._on_lookup = on_lookup

    # -- public operations ---------------------------------------------------------

    def exists(self, t):
        """True iff some point has timestamp exactly ``t``."""
        self._count()
        if t < self._first_time or t > self._last_time:
            return False
        _row, exact = self._locate(t)
        return exact

    def position_after(self, t):
        """Row of the first point with time > ``t`` (None if none)."""
        self._count()
        if t < self._first_time:
            return 0
        if t >= self._last_time:
            return None
        row, exact = self._locate(t)
        after = row + 1 if exact else row
        return after if after < self._n_rows else None

    def position_before(self, t):
        """Row of the last point with time < ``t`` (None if none)."""
        self._count()
        if t > self._last_time:
            return self._n_rows - 1
        if t <= self._first_time:
            return None
        row, _exact = self._locate(t)
        return row - 1 if row > 0 else None

    # -- internals -------------------------------------------------------------------

    def _count(self):
        if self._on_lookup is not None:
            self._on_lookup()

    def _locate(self, t):
        """Insertion row for ``t`` and whether an exact point exists there."""
        page = int(np.searchsorted(self._page_start_times, t,
                                   side="right")) - 1
        page = max(page, 0)
        page_t = self._read_page(page)
        offset = int(np.searchsorted(page_t, t, side="left"))
        if offset == page_t.size and page + 1 < self._page_start_times.size:
            # t falls in the gap before the next page's first timestamp.
            return int(self._page_row_starts[page + 1]), False
        row = int(self._page_row_starts[page]) + offset
        exact = offset < page_t.size and int(page_t[offset]) == int(t)
        return row, exact
