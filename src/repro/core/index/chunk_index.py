"""Exact chunk index operations on top of step regression (Definition 3.5).

The index answers three queries against a chunk's timestamp column:

* (a)   ``exists(t)``          — is there a data point at exactly ``t``?
* (b-1) ``position_after(t)``  — row of the closest point with time > t
* (b-2) ``position_before(t)`` — row of the closest point with time < t

The step regression function predicts a position; because the fitted
function stores its maximum training error, a bounded window around the
prediction is guaranteed to contain the answer, and only the page(s)
covering that window need to be decoded.  If a pathological fit underes-
timates its error for a timestamp that was never seen at fit time, the
window is widened geometrically until it brackets ``t`` — the operations
are therefore exact regardless of regression quality.

The index deliberately does not know about chunk bytes: it reads pages
through a ``read_page_timestamps(page_idx)`` callable supplied by the
storage layer, which also does the I/O accounting.
"""

from __future__ import annotations

import numpy as np

from ...errors import IndexError_
from .step_regression import StepRegression


class ChunkIndex:
    """Exact lookups over a chunk's timestamps via step regression.

    Args:
        regression: fitted :class:`StepRegression` for the chunk.
        page_row_starts: int array, first global row of each page.
        n_rows: total number of points in the chunk.
        read_page_timestamps: callable ``page_idx -> int64 array``.
        on_lookup: optional callable invoked once per index operation
            (used for the ``index_lookups`` counter).
    """

    #: extra slack added around the regression's max error window
    _WINDOW_MARGIN = 2

    def __init__(self, regression, page_row_starts, n_rows,
                 read_page_timestamps, on_lookup=None):
        self._regression = regression
        self._page_row_starts = np.asarray(page_row_starts, dtype=np.int64)
        self._n_rows = int(n_rows)
        self._read_page = read_page_timestamps
        self._on_lookup = on_lookup
        if self._n_rows != regression.n_points:
            raise IndexError_(
                "index row count %d != regression points %d"
                % (self._n_rows, regression.n_points))

    @classmethod
    def build(cls, timestamps, page_row_starts, read_page_timestamps,
              on_lookup=None):
        """Fit a regression on ``timestamps`` and wrap it as an index."""
        regression = StepRegression.fit(timestamps)
        return cls(regression, page_row_starts, len(timestamps),
                   read_page_timestamps, on_lookup)

    @property
    def regression(self):
        """The underlying fitted :class:`StepRegression`."""
        return self._regression

    # -- public operations (Definition 3.5) -------------------------------------

    def exists(self, t):
        """Operation (a): True iff some point has timestamp exactly ``t``."""
        self._count()
        first_t = int(self._regression.split_timestamps[0])
        last_t = int(self._regression.split_timestamps[-1])
        if t < first_t or t > last_t:
            return False
        row, exact = self._locate(t)
        return exact

    def position_after(self, t):
        """Operation (b-1): row of the first point with time > ``t``.

        Returns ``None`` when every point is at or before ``t``.
        """
        self._count()
        first_t = int(self._regression.split_timestamps[0])
        last_t = int(self._regression.split_timestamps[-1])
        if t < first_t:
            return 0
        if t >= last_t:
            return None
        row, exact = self._locate(t)
        after = row + 1 if exact else row
        return after if after < self._n_rows else None

    def position_before(self, t):
        """Operation (b-2): row of the last point with time < ``t``.

        Returns ``None`` when every point is at or after ``t``.
        """
        self._count()
        first_t = int(self._regression.split_timestamps[0])
        last_t = int(self._regression.split_timestamps[-1])
        if t > last_t:
            return self._n_rows - 1
        if t <= first_t:
            return None
        row, _exact = self._locate(t)
        return row - 1 if row > 0 else None

    # -- internals ----------------------------------------------------------------

    def _count(self):
        if self._on_lookup is not None:
            self._on_lookup()

    def _locate(self, t):
        """Global insertion row for ``t`` (``side='left'``) and exactness.

        The returned ``row`` is the smallest row whose timestamp is >= t;
        ``exact`` says whether that timestamp equals ``t``.
        """
        predicted = self._regression.predict(t)  # 1-based
        half_window = int(np.ceil(self._regression.max_error)) \
            + self._WINDOW_MARGIN
        lo = int(predicted) - 1 - half_window  # to 0-based
        hi = int(predicted) - 1 + half_window
        while True:
            lo = min(max(lo, 0), self._n_rows - 1)
            hi = max(min(hi, self._n_rows - 1), lo)
            window_t = self._read_rows(lo, hi)
            # Expand until the window brackets t (or hits the chunk edge).
            if t < window_t[0] and lo > 0:
                lo -= max(2 * half_window, 16)
                continue
            if t > window_t[-1] and hi < self._n_rows - 1:
                hi += max(2 * half_window, 16)
                continue
            offset = int(np.searchsorted(window_t, t, side="left"))
            row = lo + offset
            exact = offset < window_t.size and int(window_t[offset]) == int(t)
            return row, exact

    def _read_rows(self, lo, hi):
        """Timestamps of global rows ``lo..hi`` inclusive, via page reads."""
        first_page = int(np.searchsorted(self._page_row_starts, lo,
                                         side="right")) - 1
        last_page = int(np.searchsorted(self._page_row_starts, hi,
                                        side="right")) - 1
        parts = []
        for page in range(first_page, last_page + 1):
            page_start = int(self._page_row_starts[page])
            page_t = self._read_page(page)
            start = max(lo - page_start, 0)
            end = min(hi - page_start + 1, page_t.size)
            parts.append(page_t[start:end])
        if len(parts) == 1:
            return parts[0]
        return np.concatenate(parts)
