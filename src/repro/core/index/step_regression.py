"""Step regression (Section 3.5): timestamp -> position, fitted per chunk.

Sensor data is collected at a near-constant frequency, so the map from a
point's timestamp to its position inside a chunk looks like alternating
*tilt* segments (slope ``K`` = 1 / collection period) and *level* segments
(transmission gaps).  The step regression function models exactly that:

    f(t) = 1_{I_o}(t) * K * t  +  sum_i 1_{I_i}(t) * b_i

The fit follows the paper's heuristic: ``K`` from the median timestamp
delta (Section 3.5.2), changing points from the 3-sigma rule on deltas,
intercepts anchored at the changing points, and split timestamps from the
intersections of adjacent segments (Section 3.5.3).

Positions are 1-based, as in the paper (``f(FP.t) = 1``,
``f(LP.t) = |C|``).  The fitted function also records its maximum absolute
position error over the training points, which lets
:class:`repro.core.index.chunk_index.ChunkIndex` turn the approximate
prediction into exact lookups with a bounded local search.
"""

from __future__ import annotations

import dataclasses
import struct

import numpy as np

from ...errors import StepRegressionError

_HEADER = struct.Struct("<dIId")  # K, n_points, n_splits, max_error


@dataclasses.dataclass(frozen=True)
class StepRegression:
    """A fitted step regression function.

    Attributes:
        slope: the tilt slope ``K`` (positions per time unit).
        split_timestamps: the sorted split timestamps ``S = {t_1..t_m}``.
        intercepts: ``b_1..b_{m-1}``, one per segment; segment ``i``
            (1-based) is tilt when ``i`` is odd and level when even.
        n_points: chunk size ``|C|``.
        max_error: max |f(P_j.t) - j| over the training points.
    """

    slope: float
    split_timestamps: np.ndarray  # int64, length m >= 2
    intercepts: np.ndarray        # float64, length m - 1
    n_points: int
    max_error: float

    # -- fitting ---------------------------------------------------------------

    @classmethod
    def fit(cls, timestamps):
        """Fit the function to a chunk's (strictly increasing) timestamps."""
        t = np.ascontiguousarray(timestamps, dtype=np.int64)
        if t.size < 2:
            raise StepRegressionError(
                "step regression needs >= 2 points, got %d" % t.size)
        deltas = np.diff(t)
        median_delta = float(np.median(deltas))
        if median_delta <= 0:
            raise StepRegressionError("non-increasing timestamps")
        slope = 1.0 / median_delta

        changing = _select_changing_points(deltas)
        splits, intercepts = _build_segments(t, slope, changing)
        fitted = cls(slope, splits, intercepts, int(t.size), 0.0)
        predicted = fitted.predict_array(t)
        max_error = float(np.max(np.abs(predicted - np.arange(1, t.size + 1))))
        return dataclasses.replace(fitted, max_error=max_error)

    # -- evaluation --------------------------------------------------------------

    @property
    def n_segments(self):
        """Number of segments ``m - 1``."""
        return len(self.intercepts)

    def segment_of(self, t):
        """0-based segment index for timestamp ``t`` (clamped to range)."""
        # Interior boundaries t_2..t_{m-1}; segment i covers [t_i, t_{i+1}).
        idx = int(np.searchsorted(self.split_timestamps[1:-1], t, side="right"))
        return min(idx, self.n_segments - 1)

    def predict(self, t):
        """Predicted 1-based position of timestamp ``t`` (clamped)."""
        first_t = int(self.split_timestamps[0])
        last_t = int(self.split_timestamps[-1])
        if t <= first_t:
            return 1.0
        if t >= last_t:
            return float(self.n_points)
        seg = self.segment_of(t)
        if seg % 2 == 0:  # 1-based odd segment: tilt
            predicted = self.slope * t + float(self.intercepts[seg])
        else:
            predicted = float(self.intercepts[seg])
        return min(max(predicted, 1.0), float(self.n_points))

    def predict_array(self, timestamps):
        """Vectorized :meth:`predict` over an int64 array."""
        t = np.asarray(timestamps, dtype=np.int64)
        seg = np.searchsorted(self.split_timestamps[1:-1], t, side="right")
        seg = np.minimum(seg, self.n_segments - 1)
        tilt = seg % 2 == 0
        out = np.where(tilt,
                       self.slope * t + self.intercepts[seg],
                       self.intercepts[seg])
        out = np.clip(out, 1.0, float(self.n_points))
        out[t <= self.split_timestamps[0]] = 1.0
        out[t >= self.split_timestamps[-1]] = float(self.n_points)
        return out

    # -- serialization -------------------------------------------------------------

    def to_bytes(self):
        """Compact binary form stored inside chunk metadata."""
        header = _HEADER.pack(self.slope, self.n_points,
                              len(self.split_timestamps), self.max_error)
        return (header
                + self.split_timestamps.astype("<i8").tobytes()
                + self.intercepts.astype("<f8").tobytes())

    @classmethod
    def from_bytes(cls, data, offset=0):
        """Inverse of :meth:`to_bytes`; returns ``(function, next_offset)``."""
        if len(data) - offset < _HEADER.size:
            raise StepRegressionError("truncated step regression block")
        slope, n_points, n_splits, max_error = _HEADER.unpack_from(data, offset)
        offset += _HEADER.size
        splits = np.frombuffer(data, dtype="<i8", count=n_splits,
                               offset=offset).astype(np.int64)
        offset += n_splits * 8
        intercepts = np.frombuffer(data, dtype="<f8", count=n_splits - 1,
                                   offset=offset).astype(np.float64)
        offset += (n_splits - 1) * 8
        return cls(slope, splits, intercepts, n_points, max_error), offset


def _select_changing_points(deltas):
    """3-sigma changing point selection (Section 3.5.3).

    Returns 0-based indices ``j`` of changing points ``P_j``, enforcing the
    enter-gap / exit-gap alternation the paper's segment construction
    assumes.  ``deltas[i] = t[i+1] - t[i]``.
    """
    mu = float(np.mean(deltas))
    sigma = float(np.std(deltas))
    threshold = mu + 3.0 * sigma
    large = deltas > threshold
    if not large.any():
        return []
    # P_j enters a gap when delta_{j-1} is small and delta_j is large;
    # exits when delta_{j-1} is large and delta_j is small.
    events = []
    for j in np.flatnonzero(large[:-1] != large[1:]) + 1:
        events.append((int(j), "enter" if large[j] else "exit"))
    # Enforce alternation starting with "enter" (first segment is tilt).
    changing = []
    expect = "enter"
    for j, kind in events:
        if kind == expect:
            changing.append(j)
            expect = "exit" if expect == "enter" else "enter"
    if len(changing) % 2 == 1:
        # A trailing un-exited gap: the chunk ends inside a level segment;
        # drop the final enter so segments still alternate tilt/level/tilt.
        changing.pop()
    return changing


def _build_segments(t, slope, changing):
    """Intercepts and split timestamps from changing points (Section 3.5.3).

    ``changing`` holds 0-based indices; the paper's formulas use 1-based
    positions ``j``, so each index is shifted by one when anchoring.
    """
    n = t.size
    m = len(changing) + 2
    intercepts = np.empty(m - 1, dtype=np.float64)
    intercepts[0] = 1.0 - slope * float(t[0])
    for i in range(2, m - 1):  # segments 2..m-2 (1-based)
        j0 = changing[i - 2]          # 0-based index of the (i-1)-th point
        j = j0 + 1                    # 1-based position
        if i % 2 == 1:                # odd: tilt, anchored f(P_j.t) = j
            intercepts[i - 1] = j - slope * float(t[j0])
        else:                         # even: level at height j
            intercepts[i - 1] = float(j)
    if m >= 3:
        if (m - 1) % 2 == 1:          # last segment is tilt
            intercepts[m - 2] = float(n) - slope * float(t[-1])
        else:                         # last segment is level
            intercepts[m - 2] = float(n)

    splits = np.empty(m, dtype=np.int64)
    splits[0] = t[0]
    splits[m - 1] = t[-1]
    for i in range(2, m):  # interior split t_i, 1-based i in 2..m-1
        b_prev = intercepts[i - 2]
        b_cur = intercepts[i - 1]
        if i % 2 == 1:      # level (i-1) meets tilt (i): K t + b_i = b_{i-1}
            splits[i - 1] = int(round((b_prev - b_cur) / slope))
        else:               # tilt (i-1) meets level (i): K t + b_{i-1} = b_i
            splits[i - 1] = int(round((b_cur - b_prev) / slope))
    # Guard against numerically inverted boundaries on noisy fits.
    np.maximum.accumulate(splits, out=splits)
    return splits, intercepts
