"""Chunk indexing: step regression (Section 3.5) and its binary-search
ablation baseline."""

from .binary_index import BinarySearchIndex
from .chunk_index import ChunkIndex
from .step_regression import StepRegression

__all__ = ["BinarySearchIndex", "ChunkIndex", "StepRegression"]
