"""M4 query results: per-span FP/LP/BP/TP aggregates.

Both operators (M4-UDF and M4-LSM) produce an :class:`M4Result`, so their
outputs compare directly — the equality used throughout the tests to show
the merge-free operator loses no precision.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from .series import Point, TimeSeries


@dataclasses.dataclass(frozen=True)
class SpanAggregate:
    """The four representation points of one time span (Formula 1).

    ``None`` everywhere means the span holds no (surviving) points.
    """

    first: Point = None
    last: Point = None
    bottom: Point = None
    top: Point = None

    def is_empty(self):
        """True when the span had no data."""
        return self.first is None

    def points(self):
        """The distinct representation points, in time order."""
        present = [p for p in (self.first, self.last, self.bottom, self.top)
                   if p is not None]
        return sorted(set(present))

    def value_bounds(self):
        """``(bottom value, top value)`` of a non-empty span."""
        return self.bottom.v, self.top.v

    def semantically_equal(self, other):
        """Paper-faithful equivalence: FP/LP must match exactly; BP/TP
        may be any point attaining the same extreme value (the "any one"
        latitude of Definition 2.1)."""
        if self.is_empty() or other.is_empty():
            return self.is_empty() and other.is_empty()
        return (self.first == other.first
                and self.last == other.last
                and self.bottom.v == other.bottom.v
                and self.top.v == other.top.v)


def merge_time_ranges(ranges, t_qs=None, t_qe=None):
    """Clip half-open ``(start, end)`` ranges to ``[t_qs, t_qe)``, merge
    overlapping/adjacent ones, and return them as a sorted tuple.

    The canonical form of an :attr:`M4Result.skipped` list: operators
    collect one range per damaged chunk and normalize through here, so
    equal damage yields equal metadata regardless of discovery order.
    """
    clipped = []
    for start, end in ranges:
        start, end = int(start), int(end)
        if t_qs is not None:
            start = max(start, int(t_qs))
        if t_qe is not None:
            end = min(end, int(t_qe))
        if start < end:
            clipped.append((start, end))
    clipped.sort()
    merged = []
    for start, end in clipped:
        if merged and start <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], end))
        else:
            merged.append((start, end))
    return tuple(merged)


@dataclasses.dataclass(frozen=True)
class M4Result:
    """Aggregates for all ``w`` spans of one M4 query.

    Attributes:
        t_qs: query start time (inclusive).
        t_qe: query end time (exclusive).
        w: number of time spans the range was divided into.
        spans: exactly ``w`` :class:`SpanAggregate` objects, span order.
        skipped: canonical half-open time ranges of quarantined
            (damaged) chunks a degraded read left out — empty for a
            healthy query (see :func:`merge_time_ranges`).  Excluded
            from equality so a degraded M4-UDF and M4-LSM answer over
            the same surviving data still compare equal span-by-span.

    Raises:
        ValueError: when constructed with ``len(spans) != w``.
    """

    t_qs: int
    t_qe: int
    w: int
    spans: tuple  # of SpanAggregate, length w
    skipped: tuple = dataclasses.field(default=(), compare=False)

    def __post_init__(self):
        if len(self.spans) != self.w:
            raise ValueError("expected %d spans, got %d"
                             % (self.w, len(self.spans)))

    @property
    def degraded(self):
        """True when damaged chunks were skipped to produce this result."""
        return bool(self.skipped)

    def __len__(self):
        return self.w

    def __getitem__(self, i):
        return self.spans[i]

    def __iter__(self):
        return iter(self.spans)

    def non_empty_spans(self):
        """Indices of spans that contain data."""
        return [i for i, s in enumerate(self.spans) if not s.is_empty()]

    def rows(self):
        """The SQL result rows of Appendix A.1, one tuple per non-empty
        span: ``(span, first_t, first_v, last_t, last_v, bottom_t,
        bottom_v, top_t, top_v)``."""
        out = []
        for i, s in enumerate(self.spans):
            if s.is_empty():
                continue
            out.append((i, s.first.t, s.first.v, s.last.t, s.last.v,
                        s.bottom.t, s.bottom.v, s.top.t, s.top.v))
        return out

    def to_series(self):
        """The reduced series for rendering: all representation points,
        de-duplicated, in time order (at most ``4w`` points)."""
        points = []
        for s in self.spans:
            points.extend(s.points())
        dedup = sorted(set(points))
        if not dedup:
            return TimeSeries.empty()
        t = np.array([p.t for p in dedup], dtype=np.int64)
        v = np.array([p.v for p in dedup], dtype=np.float64)
        return TimeSeries(t, v)

    def total_points(self):
        """Distinct representation points across all spans."""
        return len(self.to_series())

    def semantically_equal(self, other):
        """Span-wise :meth:`SpanAggregate.semantically_equal`."""
        if (self.t_qs, self.t_qe, self.w) != (other.t_qs, other.t_qe, other.w):
            return False
        return all(a.semantically_equal(b)
                   for a, b in zip(self.spans, other.spans))
