"""The M4-LSM operator (Section 3, Algorithm 1): chunk-merge-free M4.

For every span the solver iterates candidate generation (Section 3.2)
and verification (Sections 3.3/3.4), lazily loading chunk data only when
metadata cannot answer.  The span's boundaries participate as virtual
deletes, so a whole-chunk metadata point that falls outside the span is
invalidated through exactly the same code path as a deleted one.

Invariant maintained by the solve loops: candidates are generated only
when no view has a pending (invalidated, not yet recomputed) point, and
every known metadata point bounds its view's true surviving extreme from
the optimistic side — so a candidate that survives verification is the
true representation point.
"""

from __future__ import annotations

import os

from ...errors import CorruptFileError, StorageError
from ...obs import tracer_of
from ...storage.deadline import check_deadline
from ...storage.overlap import contested_versions
from ..m4 import _count_degraded
from ..result import M4Result, SpanAggregate, merge_time_ranges
from ..spans import all_span_bounds, validate_query
from .candidates import (
    BP,
    FP,
    LP,
    TP,
    ChunkView,
    candidate_pool,
    pending_views,
)
from .lazyload import (
    load_view_data,
    recalc_bottom_top,
    resolve_first,
    resolve_last,
    tighten_first_bound,
    tighten_last_bound,
)
from .verification import DELETED, verify_bp_tp, verify_fp_lp
from .virtual_deletes import deletes_with_span

#: Safety valve: a span solve that iterates this many times indicates a
#: broken invariant rather than a hard workload.
_MAX_ITERATIONS = 1_000_000


class SpanSolver:
    """Solves the four representation functions for one span."""

    def __init__(self, views, real_deletes, data_reader, stats=None,
                 lazy=True, use_regression=True, parallel_map=None):
        if not views:
            raise StorageError("SpanSolver needs at least one chunk view")
        self._views = views
        self._span_start = views[0].span_start
        self._span_end = views[0].span_end
        self._real_deletes = real_deletes
        self._deletes = deletes_with_span(real_deletes, self._span_start,
                                          self._span_end)
        self._reader = data_reader
        self._stats = stats
        self._lazy = lazy
        self._use_regression = use_regression
        self._parallel_map = parallel_map

    def solve(self):
        """All four representation points as a :class:`SpanAggregate`."""
        first = self._solve_time_extreme(FP)
        if first is None:
            return SpanAggregate()
        last = self._solve_time_extreme(LP)
        bottom = self._solve_value_extreme(BP)
        top = self._solve_value_extreme(TP)
        return SpanAggregate(first=first, last=last, bottom=bottom, top=top)

    # -- FP / LP ---------------------------------------------------------------------

    def _solve_time_extreme(self, function):
        views = self._views
        for _ in range(_MAX_ITERATIONS):
            self._count_iteration()
            pool = candidate_pool(views, function)
            pending = pending_views(views, function)
            if not pool:
                if not pending:
                    return None  # every view is dead: the span is empty
                self._resolve_time(self._best_pending(pending, function),
                                   function)
                continue
            view, candidate = pool[0]
            blocker = self._blocking_pending(pending, candidate, function)
            if blocker is not None:
                self._resolve_time(blocker, function)
                continue
            verdict = verify_fp_lp(candidate, view, self._deletes)
            if verdict.is_latest():
                return candidate
            if function == FP:
                tighten_first_bound(view, verdict.delete)
            else:
                tighten_last_bound(view, verdict.delete)
            if not self._lazy:
                self._resolve_time(view, function, eager=True)
        raise StorageError("FP/LP solve did not converge")

    def _best_pending(self, pending, function):
        if function == FP:
            return min(pending, key=lambda u: u.first_bound)
        return max(pending, key=lambda u: u.last_bound)

    def _blocking_pending(self, pending, candidate, function):
        """A pending view whose bound admits a point beating (or tying,
        hence possibly out-versioning) the current candidate."""
        if function == FP:
            blockers = [u for u in pending if u.first_bound <= candidate.t]
            return min(blockers, key=lambda u: u.first_bound) \
                if blockers else None
        blockers = [u for u in pending if u.last_bound >= candidate.t]
        return max(blockers, key=lambda u: u.last_bound) if blockers else None

    def _resolve_time(self, view, function, eager=False):
        if eager or not self._lazy:
            load_view_data(view, self._real_deletes, self._reader)
        if function == FP:
            resolve_first(view, self._deletes, self._reader,
                          self._use_regression)
        else:
            resolve_last(view, self._deletes, self._reader,
                         self._use_regression)

    # -- BP / TP ---------------------------------------------------------------------

    def _solve_value_extreme(self, function):
        views = self._views
        for _ in range(_MAX_ITERATIONS):
            self._count_iteration()
            pending = pending_views(views, function)
            self._prefetch(pending)
            for view in pending:
                recalc_bottom_top(view, self._real_deletes, self._reader,
                                  functions=(function,))
            pool = candidate_pool(views, function)
            if not pool:
                return None  # every view is dead: the span is empty
            # Only the best (earliest-t) candidate may be verified: a
            # failed view must recompute before a later-t value tie is
            # trusted, or the tie could resolve to the wrong timestamp.
            view, candidate = pool[0]
            verdict = verify_bp_tp(candidate, view, views, self._deletes,
                                   self._reader, self._use_regression)
            if verdict.is_latest():
                return candidate
            if verdict.status != DELETED:
                view.excluded.add(candidate.t)
            view.invalidate(function)
        raise StorageError("BP/TP solve did not converge")

    def _prefetch(self, pending):
        """Fan the pending views' chunk loads out over the engine's
        pipeline (a pure prefetch: each worker materializes a distinct
        view's in-span data, after which the serial recalc below is all
        in-memory, so results are identical to a serial load order)."""
        unloaded = [view for view in pending if not view.loaded]
        if self._parallel_map is None or len(unloaded) < 2:
            return
        self._parallel_map(
            lambda view: load_view_data(view, self._real_deletes,
                                        self._reader), unloaded)

    def _count_iteration(self):
        if self._stats is not None:
            self._stats.add(candidate_iterations=1)


class M4LSMOperator:
    """The database-native, merge-free M4 operator (Figure 2(c)).

    Args:
        engine: a :class:`repro.storage.engine.StorageEngine`.
        lazy: disable to force eager chunk reloading on every failed
            verification (the E11 ablation).
        use_regression: disable to fall back to binary-search chunk
            indexes (the E10 ablation).
        degraded: skip quarantined/corrupt chunks and flag the result
            instead of raising; ``None`` (default) follows
            ``engine.config.degraded_reads``.
    """

    name = "M4-LSM"

    def __init__(self, engine, lazy=True, use_regression=True,
                 fused_fast_path=True, degraded=None):
        self._engine = engine
        self._lazy = lazy
        self._use_regression = use_regression
        self._fused_fast_path = fused_fast_path
        self._degraded = degraded

    def _degraded_enabled(self):
        if self._degraded is not None:
            return self._degraded
        return getattr(self._engine.config, "degraded_reads", True)

    def _drop_quarantined(self, metas, skipped):
        """Filter out already-quarantined chunks, recording their ranges."""
        quarantine = getattr(self._engine, "quarantine", None)
        if quarantine is None or not len(quarantine):
            return metas
        healthy = []
        for meta in metas:
            if quarantine.contains_meta(meta):
                skipped.append((meta.start_time, meta.end_time + 1))
            else:
                healthy.append(meta)
        return healthy

    def _quarantine_bad(self, exc, metas, skipped, dead):
        """Quarantine the chunk behind a checksum failure; returns the
        surviving metas for a re-solve.

        The failing chunk is identified by the ``(file, data_offset)``
        the :class:`CorruptFileError` carries; when the error cannot be
        attributed, every chunk of the span is dropped (conservative:
        the span degrades to empty rather than looping forever).
        """
        target = getattr(exc, "chunk", None)
        bad = []
        if target is not None:
            t_file = os.path.basename(str(target[0]))
            t_offset = int(target[1])
            bad = [m for m in metas
                   if os.path.basename(m.file_path) == t_file
                   and m.data_offset == t_offset]
        if not bad:
            bad = list(metas)
        quarantine = getattr(self._engine, "quarantine", None)
        for meta in bad:
            if quarantine is not None:
                quarantine.add_meta(meta, reason=str(exc))
            dead.add((meta.file_path, meta.data_offset))
            skipped.append((meta.start_time, meta.end_time + 1))
        return [m for m in metas
                if (m.file_path, m.data_offset) not in dead]

    def query(self, series_name, t_qs, t_qe, w):
        """Run the M4 representation query; returns :class:`M4Result`.

        Equivalent to Algorithm 1: chunk metadata and deletes are read
        once; each span is then solved independently, sharing one
        DataReader so pages decoded for one span are reused by the next.
        """
        result, _trace = self._execute(series_name, t_qs, t_qe, w,
                                       collect_trace=False)
        return result

    def query_traced(self, series_name, t_qs, t_qe, w):
        """Like :meth:`query`, also returning a per-span
        :class:`repro.core.m4lsm.tracing.QueryTrace` (EXPLAIN output)."""
        return self._execute(series_name, t_qs, t_qe, w,
                             collect_trace=True)

    def _execute(self, series_name, t_qs, t_qe, w, collect_trace):
        validate_query(t_qs, t_qe, w)
        tracer = tracer_of(self._engine)
        degraded = self._degraded_enabled()
        skipped = []   # (start, end) per damaged chunk left out
        dead = set()   # (file_path, data_offset) quarantined mid-query
        with tracer.span("operator.m4lsm", series=series_name, w=w):
            with tracer.span("read.metadata"):
                metadata_reader = self._engine.metadata_reader(series_name)
                chunks = metadata_reader.chunks_overlapping(t_qs, t_qe)
                real_deletes = self._engine.deletes_for(series_name)
            if degraded:
                chunks = self._drop_quarantined(chunks, skipped)
            data_reader = self._engine.data_reader()
            stats = self._engine.stats
            parallel_map = self._engine.parallel_map \
                if self._engine.parallelism > 1 else None

            bounds = all_span_bounds(t_qs, t_qe, w)
            duration = t_qe - t_qs
            per_span = [[] for _ in range(w)]
            for meta in chunks:
                lo = max(meta.start_time, t_qs)
                hi = min(meta.end_time, t_qe - 1)
                first_span = int((lo - t_qs) * w // duration)
                last_span = int((hi - t_qs) * w // duration)
                for i in range(first_span, last_span + 1):
                    per_span[i].append(meta)

            contested = contested_versions(chunks, real_deletes) \
                if self._fused_fast_path else None

            from .tracing import EMPTY, FUSED, SOLVER, QueryTrace, SpanTrace
            span_traces = [] if collect_trace else None
            spans = []
            with tracer.span("solve", spans=w,
                             chunks=len(chunks)) as solve_span:
                n_fused = n_solver = 0
                for i in range(w):
                    check_deadline()  # cancellation point: between spans
                    start, end = int(bounds[i]), int(bounds[i + 1])
                    metas_i = per_span[i] if not dead else \
                        [m for m in per_span[i]
                         if (m.file_path, m.data_offset) not in dead]
                    if start >= end or not metas_i:
                        spans.append(SpanAggregate())
                        if collect_trace:
                            span_traces.append(SpanTrace(i, start, end,
                                                         EMPTY))
                        continue
                    if contested is not None:
                        fused = _fused_span(metas_i, start, end,
                                            contested)
                        if fused is not None:
                            spans.append(fused)
                            n_fused += 1
                            if collect_trace:
                                span_traces.append(SpanTrace(
                                    i, start, end, FUSED,
                                    n_chunks=len(metas_i)))
                            continue
                    before = stats.snapshot() if collect_trace else None
                    while True:
                        views = [ChunkView(meta, start, end)
                                 for meta in metas_i]
                        solver = SpanSolver(
                            views, real_deletes, data_reader,
                            stats=stats, lazy=self._lazy,
                            use_regression=self._use_regression,
                            parallel_map=parallel_map)
                        try:
                            spans.append(solver.solve())
                            break
                        except CorruptFileError as exc:
                            if not degraded:
                                raise
                            # Quarantine the damaged chunk and re-solve
                            # the span from the survivors.
                            metas_i = self._quarantine_bad(exc, metas_i,
                                                           skipped, dead)
                            if not metas_i:
                                spans.append(SpanAggregate())
                                break
                    n_solver += 1
                    if collect_trace:
                        diff = stats.diff(before)
                        span_traces.append(SpanTrace(
                            i, start, end, SOLVER,
                            n_chunks=len(metas_i),
                            iterations=diff.candidate_iterations,
                            chunk_loads=diff.chunk_loads,
                            pages_decoded=diff.pages_decoded,
                            index_lookups=diff.index_lookups))
                solve_span.attrs["fused"] = n_fused
                solve_span.attrs["solver"] = n_solver
            result = M4Result(
                int(t_qs), int(t_qe), int(w), tuple(spans),
                skipped=merge_time_ranges(skipped, t_qs, t_qe))
            if result.degraded:
                _count_degraded(self._engine, self.name)
            trace = QueryTrace(series_name, int(t_qs), int(t_qe), int(w),
                               tuple(span_traces)) if collect_trace \
                else None
            return result, trace


def _fused_span(metas, start, end, contested):
    """Metadata-only aggregate for an uncontested span, else ``None``."""
    first = last = bottom = top = None
    for meta in metas:
        if meta.version in contested:
            return None
        stats = meta.statistics
        if not (start <= stats.start_time and stats.end_time < end):
            return None  # split by the span boundary: needs the solver
        if first is None or stats.first.t < first.t:
            first = stats.first
        if last is None or stats.last.t > last.t:
            last = stats.last
        # Value ties break on earliest timestamp so the fused answer
        # matches the solver and the UDF regardless of meta order.
        if bottom is None or stats.bottom.v < bottom.v or (
                stats.bottom.v == bottom.v and stats.bottom.t < bottom.t):
            bottom = stats.bottom
        if top is None or stats.top.v > top.v or (
                stats.top.v == top.v and stats.top.t < top.t):
            top = stats.top
    return SpanAggregate(first=first, last=last, bottom=bottom, top=top)
