"""M4-LSM: the paper's chunk-merge-free M4 operator."""

from .candidates import ALL_FUNCTIONS, BP, FP, LP, TP, ChunkView, candidate_pool
from .operator import M4LSMOperator, SpanSolver
from .tracing import EMPTY, FUSED, SOLVER, QueryTrace, SpanTrace
from .verification import (
    DELETED,
    LATEST,
    OVERWRITTEN,
    Verdict,
    verify_bp_tp,
    verify_fp_lp,
)
from .virtual_deletes import deletes_with_span, span_virtual_deletes

__all__ = [
    "ALL_FUNCTIONS",
    "BP",
    "ChunkView",
    "DELETED",
    "EMPTY",
    "FUSED",
    "FP",
    "LATEST",
    "LP",
    "M4LSMOperator",
    "OVERWRITTEN",
    "QueryTrace",
    "SOLVER",
    "SpanSolver",
    "SpanTrace",
    "TP",
    "Verdict",
    "candidate_pool",
    "deletes_with_span",
    "span_virtual_deletes",
    "verify_bp_tp",
    "verify_fp_lp",
]
