"""Chunk views and candidate generation (Section 3.2).

A :class:`ChunkView` is the per-span mutable state of one chunk: it
starts with the chunk's optimistic whole-chunk metadata points and is
progressively corrected as candidates fail verification — time bounds
tighten, representation points are recomputed under deletes, overwritten
timestamps are excluded.  Candidate generation picks, per representation
function, the extreme point among the views' current metadata, breaking
value ties by earliest timestamp (matching the UDF's ``argmin``/
``argmax`` first-occurrence semantics, so results never depend on chunk
layout) and timestamp ties by the largest version (the ``argmax
P.kappa`` of Section 3.2).
"""

from __future__ import annotations

import numpy as np

#: The four representation function tags.
FP, LP, BP, TP = "FP", "LP", "BP", "TP"
ALL_FUNCTIONS = (FP, LP, BP, TP)


class ChunkView:
    """Per-span view of one chunk's metadata and (lazily loaded) data.

    Point attributes hold the current best-known representation points:
    a :class:`Point` (possibly optimistic — not yet verified), or ``None``
    when the previous point was invalidated and a recomputation is
    pending, with the ``*_dead`` flag set once the chunk is known to have
    no surviving point for that function inside the span.
    """

    __slots__ = ("meta", "version", "span_start", "span_end",
                 "first", "first_bound", "first_dead",
                 "last", "last_bound", "last_dead",
                 "bottom", "bottom_dead", "top", "top_dead",
                 "excluded", "loaded", "data_t", "data_v", "_index")

    def __init__(self, meta, span_start, span_end):
        self.meta = meta
        self.version = meta.version
        self.span_start = span_start
        self.span_end = span_end
        stats = meta.statistics
        self.first = stats.first
        self.first_bound = stats.start_time  # surviving first time is >= this
        self.first_dead = False
        self.last = stats.last
        self.last_bound = stats.end_time     # surviving last time is <= this
        self.last_dead = False
        self.bottom = stats.bottom
        self.bottom_dead = False
        self.top = stats.top
        self.top_dead = False
        self.excluded = set()   # timestamps known overwritten by newer chunks
        self.loaded = False     # in-span, delete-filtered data materialized
        self.data_t = None
        self.data_v = None
        self._index = None

    # -- generic accessors keyed by function tag --------------------------------

    def get_point(self, function):
        """Current metadata point for ``function`` (may be optimistic)."""
        return getattr(self, _ATTR[function])

    def set_point(self, function, point):
        """Install a recomputed (now exact) representation point."""
        setattr(self, _ATTR[function], point)

    def invalidate(self, function):
        """Mark the function's point as pending recomputation."""
        setattr(self, _ATTR[function], None)

    def is_dead(self, function):
        """True once the chunk has no surviving point for ``function``."""
        return getattr(self, _DEAD[function])

    def mark_dead(self, function):
        """Record that no surviving point exists for ``function``."""
        setattr(self, _DEAD[function], True)
        setattr(self, _ATTR[function], None)

    def is_pending(self, function):
        """True when the point was invalidated but the view is not dead."""
        return self.get_point(function) is None and not self.is_dead(function)

    # -- interval / index helpers ------------------------------------------------

    def interval_covers(self, t):
        """Whole-chunk interval test of Section 3.4 (not point existence)."""
        return self.meta.statistics.covers_time(t)

    def chunk_index(self, data_reader, use_regression=True):
        """The chunk's index, built once per view."""
        if self._index is None:
            self._index = data_reader.chunk_index(self.meta, use_regression)
        return self._index

    def surviving_data(self):
        """Loaded in-span data minus excluded timestamps."""
        if not self.excluded:
            return self.data_t, self.data_v
        mask = ~np.isin(self.data_t,
                        np.fromiter(self.excluded, dtype=np.int64,
                                    count=len(self.excluded)))
        return self.data_t[mask], self.data_v[mask]

    def __repr__(self):
        return ("ChunkView(v=%s, [%d, %d], loaded=%s)"
                % (self.version, self.meta.start_time, self.meta.end_time,
                   self.loaded))


_ATTR = {FP: "first", LP: "last", BP: "bottom", TP: "top"}
_DEAD = {FP: "first_dead", LP: "last_dead", BP: "bottom_dead",
         TP: "top_dead"}


def known_candidates(views, function):
    """``(view, point)`` pairs whose metadata point is currently known."""
    return [(view, view.get_point(function)) for view in views
            if view.get_point(function) is not None]


def pending_views(views, function):
    """Views whose point for ``function`` awaits recomputation."""
    return [view for view in views if view.is_pending(function)]


def candidate_pool(views, function):
    """The paper's ``P'_G`` ordered for iteration: the known points
    attaining the representation extreme, by earliest timestamp then
    version descending.

    Returns a list of ``(view, point)``; empty if nothing is known.
    """
    known = known_candidates(views, function)
    if not known:
        return []
    if function == FP:
        extreme = min(p.t for _v, p in known)
        pool = [(v, p) for v, p in known if p.t == extreme]
    elif function == LP:
        extreme = max(p.t for _v, p in known)
        pool = [(v, p) for v, p in known if p.t == extreme]
    elif function == BP:
        extreme = min(p.v for _v, p in known)
        pool = [(v, p) for v, p in known if p.v == extreme]
    else:  # TP
        extreme = max(p.v for _v, p in known)
        pool = [(v, p) for v, p in known if p.v == extreme]
    # Value ties (BP/TP across chunks) resolve to the earliest surviving
    # timestamp — the UDF's first-occurrence answer — and only timestamp
    # ties fall back to the newest version; FP/LP pools share one
    # timestamp, for which this is plain version order.
    pool.sort(key=lambda item: (item[1].t, -item[0].version))
    return pool


def build_views(chunk_metadata, span_start, span_end):
    """Views for every chunk overlapping the span ``[start, end)``."""
    return [ChunkView(meta, span_start, span_end)
            for meta in chunk_metadata
            if meta.statistics.overlaps(span_start, span_end)]
