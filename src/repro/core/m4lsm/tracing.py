"""Query tracing: what M4-LSM did, span by span.

``M4LSMOperator.query_traced`` returns the result *plus* a
:class:`QueryTrace` recording, per span, whether the fused metadata fast
path answered, how many candidate-generation iterations ran, and what
the span cost in chunk loads and index probes — the per-span breakdown
of the counters behind the paper's latency curves.  The rendered trace
is the operator's EXPLAIN output.
"""

from __future__ import annotations

import dataclasses

#: Span resolution modes.
EMPTY = "empty"     # no chunk overlapped the span
FUSED = "fused"     # answered by combining statistics, zero iterations
SOLVER = "solver"   # full candidate generation / verification


@dataclasses.dataclass(frozen=True)
class SpanTrace:
    """Execution record of one span."""

    span_index: int
    start: int
    end: int
    mode: str
    n_chunks: int = 0
    iterations: int = 0
    chunk_loads: int = 0
    pages_decoded: int = 0
    index_lookups: int = 0

    def was_metadata_only(self):
        """True when the span was answered without reading chunk data."""
        return self.chunk_loads == 0 and self.pages_decoded == 0


@dataclasses.dataclass(frozen=True)
class QueryTrace:
    """Execution record of one M4-LSM query."""

    series: str
    t_qs: int
    t_qe: int
    w: int
    spans: tuple  # of SpanTrace

    def counts_by_mode(self):
        """``{mode: span count}``."""
        out = {EMPTY: 0, FUSED: 0, SOLVER: 0}
        for span in self.spans:
            out[span.mode] += 1
        return out

    def total(self, field):
        """Sum of one numeric SpanTrace field across spans."""
        return sum(getattr(span, field) for span in self.spans)

    def metadata_only_fraction(self):
        """Fraction of non-empty spans answered from metadata alone."""
        non_empty = [s for s in self.spans if s.mode != EMPTY]
        if not non_empty:
            return 1.0
        return sum(s.was_metadata_only() for s in non_empty) \
            / len(non_empty)

    def hottest_spans(self, limit=5):
        """The spans that decoded the most pages, descending."""
        ranked = sorted(self.spans, key=lambda s: s.pages_decoded,
                        reverse=True)
        return [s for s in ranked[:limit] if s.pages_decoded > 0]

    def render(self, max_rows=12):
        """A human-readable EXPLAIN report."""
        modes = self.counts_by_mode()
        lines = [
            "M4-LSM trace: %s in [%d, %d), w=%d"
            % (self.series, self.t_qs, self.t_qe, self.w),
            "  spans: %d fused / %d solver / %d empty"
            % (modes[FUSED], modes[SOLVER], modes[EMPTY]),
            "  totals: %d iterations, %d chunk loads, %d pages decoded, "
            "%d index lookups"
            % (self.total("iterations"), self.total("chunk_loads"),
               self.total("pages_decoded"), self.total("index_lookups")),
            "  metadata-only spans: %.1f%%"
            % (100.0 * self.metadata_only_fraction()),
        ]
        hottest = self.hottest_spans(max_rows)
        if hottest:
            lines.append("  hottest spans (pages decoded):")
            for span in hottest:
                lines.append(
                    "    span %-6d [%d, %d)  %s  iter=%d loads=%d "
                    "pages=%d probes=%d"
                    % (span.span_index, span.start, span.end, span.mode,
                       span.iterations, span.chunk_loads,
                       span.pages_decoded, span.index_lookups))
        return "\n".join(lines)
