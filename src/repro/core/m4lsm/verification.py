"""Candidate verification (Sections 3.3 and 3.4).

FP/LP candidates need only the delete check of Proposition 3.1 — a
candidate at the extreme time with the largest version can never be
overwritten.  BP/TP candidates additionally need the overwrite check of
Proposition 3.3 against chunks with larger versions: first the free
interval test on chunk metadata, and only where the interval covers the
candidate's time, an index probe (``exists``, read type (a) of Table 1)
that decodes just the page containing the probed timestamp.
"""

from __future__ import annotations

import dataclasses

#: Verification verdicts.
LATEST = "latest"
DELETED = "deleted"
OVERWRITTEN = "overwritten"


@dataclasses.dataclass(frozen=True)
class Verdict:
    """Outcome of verifying one candidate point."""

    status: str        # LATEST / DELETED / OVERWRITTEN
    delete: object = None    # the killing Delete, when DELETED
    by_view: object = None   # the overwriting ChunkView, when OVERWRITTEN

    def is_latest(self):
        """True when the candidate survived every check."""
        return self.status == LATEST


def covering_delete(point, version, deletes):
    """The first delete newer than ``version`` covering ``point.t``.

    ``deletes`` includes the span's virtual deletes, so an out-of-span
    candidate is reported exactly like a deleted one.
    """
    for delete in deletes:
        if delete.version > version and delete.covers(point.t):
            return delete
    return None


def verify_fp_lp(point, view, deletes):
    """Proposition 3.1: FP/LP candidates die only by deletes."""
    delete = covering_delete(point, view.version, deletes)
    if delete is not None:
        return Verdict(DELETED, delete=delete)
    return Verdict(LATEST)


def verify_bp_tp(point, view, all_views, deletes, data_reader,
                 use_regression=True):
    """Proposition 3.3: BP/TP candidates die by deletes *or* overwrites.

    The overwrite check follows Section 3.4's three cases: newer chunks
    whose metadata interval does not cover the candidate's time are
    dismissed for free; covering ones are probed through their chunk
    index (one page decode at most per probe).
    """
    delete = covering_delete(point, view.version, deletes)
    if delete is not None:
        return Verdict(DELETED, delete=delete)
    for other in all_views:
        if other.version <= view.version:
            continue
        if not other.interval_covers(point.t):
            continue  # case (1): free prune on metadata interval
        index = other.chunk_index(data_reader, use_regression)
        if index.exists(point.t):
            return Verdict(OVERWRITTEN, by_view=other)
    return Verdict(LATEST)
