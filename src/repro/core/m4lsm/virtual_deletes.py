"""Virtual deletes (Section 3.1): span boundaries as infinite-version
deletes.

For the i-th span ``I_i = [s, e)`` the complement is expressed as two
deletes ``D1 = (-inf, s)`` and ``D2 = [e, +inf)`` with version infinity,
so the whole candidate-verification machinery treats "the candidate lies
outside the span" exactly like "the candidate was deleted" — one code
path for both.
"""

from __future__ import annotations

from ...storage.deletes import Delete


def span_virtual_deletes(span_start, span_end):
    """The two virtual deletes whose ranges complement ``[start, end)``.

    >>> d1, d2 = span_virtual_deletes(100, 200)
    >>> d1.covers(99), d1.covers(100), d2.covers(199), d2.covers(200)
    (True, False, False, True)
    """
    return (Delete.virtual_before(span_start), Delete.virtual_from(span_end))


def deletes_with_span(delete_list, span_start, span_end):
    """The series' deletes extended with the span's virtual deletes."""
    return delete_list.extended(span_virtual_deletes(span_start, span_end))
