"""Lazy loading and metadata recomputation (Sections 3.3 and 3.4).

When a candidate fails verification, M4-LSM does *not* reload the chunk
eagerly:

* FP/LP — the killing delete's boundary tightens the view's time bound;
  an actual recomputation, when finally needed, walks the chunk index
  (read type (b): the closest point after/before a timestamp), touching
  one page per probe instead of the whole chunk.
* BP/TP — other tied candidates are tried first; only when the pool is
  exhausted is the chunk's in-span data loaded (read type (c)) and its
  bottom/top recomputed under deletes and known overwrites.
"""

from __future__ import annotations

import numpy as np

from .candidates import BP, FP, LP, TP


def tighten_first_bound(view, delete):
    """Apply the paper's ``FP(C).t = t_de`` tightening after a delete hit.

    We store the first *admissible* time, one past the delete range.
    """
    view.invalidate(FP)
    view.first_bound = max(view.first_bound, delete.t_end + 1)


def tighten_last_bound(view, delete):
    """Symmetric tightening ``LP(C).t = t_ds`` for LastPoint."""
    view.invalidate(LP)
    view.last_bound = min(view.last_bound, delete.t_start - 1)


def resolve_first(view, deletes, data_reader, use_regression=True):
    """Recompute the view's surviving FirstPoint (read type (b)).

    Walks forward from ``view.first_bound``: the chunk index yields the
    closest data point at or after the bound; if a newer delete covers
    it, the bound jumps past that delete and the walk repeats.  Marks the
    view dead when the walk exhausts the chunk.
    """
    if view.loaded:
        _resolve_first_from_data(view, deletes)
        return
    index = view.chunk_index(data_reader, use_regression)
    bound = view.first_bound
    while True:
        row = index.position_after(bound - 1)
        if row is None:
            view.mark_dead(FP)
            return
        point = data_reader.point_at_row(view.meta, row)
        delete = _covering(point.t, view.version, deletes)
        if delete is None:
            view.set_point(FP, point)
            view.first_bound = point.t
            return
        bound = delete.t_end + 1


def resolve_last(view, deletes, data_reader, use_regression=True):
    """Recompute the view's surviving LastPoint (read type (b))."""
    if view.loaded:
        _resolve_last_from_data(view, deletes)
        return
    index = view.chunk_index(data_reader, use_regression)
    bound = view.last_bound
    while True:
        row = index.position_before(bound + 1)
        if row is None:
            view.mark_dead(LP)
            return
        point = data_reader.point_at_row(view.meta, row)
        delete = _covering(point.t, view.version, deletes)
        if delete is None:
            view.set_point(LP, point)
            view.last_bound = point.t
            return
        bound = delete.t_start - 1


def load_view_data(view, real_deletes, data_reader):
    """Materialize the view's in-span, delete-filtered points (type (c))."""
    if view.loaded:
        return
    t, v = data_reader.load_chunk(
        view.meta, deletes=real_deletes,
        time_range=(view.span_start, view.span_end))
    view.data_t = t
    view.data_v = v
    view.loaded = True


def recalc_bottom_top(view, real_deletes, data_reader, functions=(BP, TP)):
    """Recompute BottomPoint/TopPoint from loaded in-span data,
    excluding timestamps known to be overwritten."""
    load_view_data(view, real_deletes, data_reader)
    t, v = view.surviving_data()
    from ..series import Point
    for function in functions:
        if t.size == 0:
            view.mark_dead(function)
            continue
        pos = int(np.argmin(v)) if function == BP else int(np.argmax(v))
        view.set_point(function, Point(int(t[pos]), float(v[pos])))


def _resolve_first_from_data(view, deletes):
    """FP from already-loaded data (deletes were applied at load; only
    the bound — which encodes virtual deletes — still applies)."""
    from ..series import Point
    t, v = view.data_t, view.data_v
    pos = int(np.searchsorted(t, view.first_bound, side="left"))
    if pos >= t.size:
        view.mark_dead(FP)
        return
    view.set_point(FP, Point(int(t[pos]), float(v[pos])))
    view.first_bound = int(t[pos])


def _resolve_last_from_data(view, deletes):
    """LP from already-loaded data, bounded above by ``last_bound``."""
    from ..series import Point
    t, v = view.data_t, view.data_v
    pos = int(np.searchsorted(t, view.last_bound, side="right")) - 1
    if pos < 0:
        view.mark_dead(LP)
        return
    view.set_point(LP, Point(int(t[pos]), float(v[pos])))
    view.last_bound = int(t[pos])


def _covering(t, version, deletes):
    for delete in deletes:
        if delete.version > version and delete.covers(t):
            return delete
    return None
