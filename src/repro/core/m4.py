"""M4 representation, RDBMS-style (Jugel et al., VLDB 2014), plus the
M4-UDF baseline operator over LSM storage.

:func:`m4_aggregate_arrays` is the core single-scan grouping of
Definition 2.3, vectorized over time-ordered arrays.  The
:class:`M4UDFOperator` reproduces the paper's baseline exactly: load every
chunk overlapping the query range, merge them into one ordered series
(applying deletes and overwrites), then run the plain M4 scan.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..errors import CorruptFileError, InvalidQueryRangeError
from ..obs import tracer_of
from ..storage.deadline import check_deadline
from .result import M4Result, SpanAggregate, merge_time_ranges
from .series import Point, TimeSeries
from .spans import span_indices, validate_query


def m4_aggregate_arrays(timestamps, values, t_qs, t_qe, w):
    """M4 over time-ordered arrays; the relational reference algorithm.

    Points outside ``[t_qs, t_qe)`` are ignored.  Runs one vectorized
    pass to find span boundaries plus an O(w) loop over the occupied
    spans.  Bottom/top tie-break on earliest time (``argmin``/``argmax``
    return the first extreme).
    """
    validate_query(t_qs, t_qe, w)
    t = np.asarray(timestamps, dtype=np.int64)
    v = np.asarray(values, dtype=np.float64)
    lo = int(np.searchsorted(t, t_qs, side="left"))
    hi = int(np.searchsorted(t, t_qe, side="left"))
    t = t[lo:hi]
    v = v[lo:hi]

    spans = [SpanAggregate()] * w
    if t.size:
        indices = span_indices(t, t_qs, t_qe, w)
        # Points are time-ordered, so each span is one contiguous slice.
        occupied, starts = np.unique(indices, return_index=True)
        ends = np.append(starts[1:], t.size)
        for span, start, end in zip(occupied, starts, ends):
            seg_t = t[start:end]
            seg_v = v[start:end]
            bottom = start + int(np.argmin(seg_v))
            top = start + int(np.argmax(seg_v))
            spans[int(span)] = SpanAggregate(
                first=Point(int(seg_t[0]), float(seg_v[0])),
                last=Point(int(seg_t[-1]), float(seg_v[-1])),
                bottom=Point(int(t[bottom]), float(v[bottom])),
                top=Point(int(t[top]), float(v[top])),
            )
    return M4Result(int(t_qs), int(t_qe), int(w), tuple(spans))


def m4_aggregate_series(series, t_qs=None, t_qe=None, w=1000):
    """M4 over a :class:`TimeSeries`; range defaults to the whole series
    (end exclusive bound is ``last.t + 1`` so the final point is kept)."""
    if len(series) == 0:
        raise InvalidQueryRangeError("cannot aggregate an empty series")
    if t_qs is None:
        t_qs = series.first().t
    if t_qe is None:
        t_qe = series.last().t + 1
    return m4_aggregate_arrays(series.timestamps, series.values,
                               t_qs, t_qe, w)


def _count_degraded(engine, operator_name):
    """Tick the engine's degraded-query counter (no-op without metrics)."""
    metrics = getattr(engine, "metrics", None)
    if metrics is not None:
        metrics.counter("degraded_queries_total",
                        operator=operator_name).inc()


class M4UDFOperator:
    """The baseline: merge online, then scan (Figure 2(b)).

    Reads *all* chunks overlapping the query range through the engine's
    DataReader, materializes the merged series, and applies the
    relational M4 scan — exactly what the paper's ``UDFM4`` does on top
    of ``SeriesRawDataBatchReader``.

    Args:
        engine: a :class:`repro.storage.engine.StorageEngine`.
        streaming: use the heap :class:`MergeReader` instead of the
            vectorized merge (slower; byte-for-byte IoTDB behaviour).
        degraded: skip quarantined/corrupt chunks and flag the result
            instead of raising; ``None`` (default) follows
            ``engine.config.degraded_reads``.
    """

    name = "M4-UDF"

    def __init__(self, engine, streaming=False, degraded=None):
        self._engine = engine
        self._streaming = streaming
        self._degraded = degraded

    def _degraded_enabled(self):
        if self._degraded is not None:
            return self._degraded
        return getattr(self._engine.config, "degraded_reads", True)

    def query(self, series_name, t_qs, t_qe, w):
        """Run the M4 representation query; returns :class:`M4Result`."""
        validate_query(t_qs, t_qe, w)
        tracer = tracer_of(self._engine)
        degraded = self._degraded_enabled()
        skipped = []
        with tracer.span("operator.m4udf", series=series_name, w=w):
            with tracer.span("read.metadata"):
                metadata_reader = self._engine.metadata_reader(series_name)
                deletes = self._engine.deletes_for(series_name)
                overlapping = metadata_reader.chunks_overlapping(t_qs, t_qe)
            data_reader = self._engine.data_reader()
            # IoTDB's reader skips chunks whose whole interval is deleted
            # (the effect behind Figure 14's falling M4-UDF latency).
            metas = [meta for meta in overlapping
                     if not deletes.fully_deletes(meta.start_time,
                                                  meta.end_time,
                                                  meta.version)]
            if degraded:
                metas = self._drop_quarantined(metas, skipped)
            with tracer.span("read.chunks", chunks=len(metas),
                             parallelism=self._engine.parallelism):
                # Fan chunk load+decode out over the engine's pipeline.
                # Results return in submission order, so the merge below
                # sees the same version-ordered sequence as a serial loop
                # and the output is byte-identical.
                chunk_arrays = self._load_chunks(data_reader, metas,
                                                 degraded, skipped)
            with tracer.span("merge", streaming=self._streaming):
                check_deadline()  # cancellation point: before the merge
                t, v = self._merge(chunk_arrays, deletes)
            with tracer.span("aggregate"):
                check_deadline()
                result = m4_aggregate_arrays(t, v, t_qs, t_qe, w)
        if skipped:
            result = dataclasses.replace(
                result, skipped=merge_time_ranges(skipped, t_qs, t_qe))
            _count_degraded(self._engine, self.name)
        return result

    def _drop_quarantined(self, metas, skipped):
        """Filter out already-quarantined chunks, recording their ranges."""
        quarantine = getattr(self._engine, "quarantine", None)
        if quarantine is None or not len(quarantine):
            return metas
        healthy = []
        for meta in metas:
            if quarantine.contains_meta(meta):
                skipped.append((meta.start_time, meta.end_time + 1))
            else:
                healthy.append(meta)
        return healthy

    def _load_chunks(self, data_reader, metas, degraded, skipped):
        """``(t, v, version)`` per chunk; in degraded mode a chunk that
        fails its checksum is quarantined and skipped instead of
        aborting the query."""
        if not degraded:
            loaded = self._engine.parallel_map(data_reader.load_chunk,
                                               metas)
            return [(t, v, meta.version) for (t, v), meta
                    in zip(loaded, metas)]

        def load(meta):
            try:
                return data_reader.load_chunk(meta)
            except CorruptFileError as exc:
                self._engine.quarantine.add_meta(meta, reason=str(exc))
                return None

        loaded = self._engine.parallel_map(load, metas)
        chunk_arrays = []
        for arrays, meta in zip(loaded, metas):
            if arrays is None:
                skipped.append((meta.start_time, meta.end_time + 1))
            else:
                chunk_arrays.append((arrays[0], arrays[1], meta.version))
        return chunk_arrays

    def merged_series(self, series_name, t_qs, t_qe, skipped=None):
        """The fully merged series for a range (loads everything).

        ``skipped``: optional list; in degraded mode the time ranges of
        damaged chunks left out of the merge are appended to it.
        """
        degraded = self._degraded_enabled()
        collect = skipped if skipped is not None else []
        metadata_reader = self._engine.metadata_reader(series_name)
        deletes = self._engine.deletes_for(series_name)
        data_reader = self._engine.data_reader()
        metas = metadata_reader.chunks_overlapping(t_qs, t_qe)
        if degraded:
            metas = self._drop_quarantined(metas, collect)
        chunk_arrays = self._load_chunks(data_reader, metas, degraded,
                                         collect)
        if skipped is not None:
            skipped[:] = merge_time_ranges(collect, t_qs, t_qe)
        t, v = self._merge(chunk_arrays, deletes)
        lo = int(np.searchsorted(t, t_qs, side="left"))
        hi = int(np.searchsorted(t, t_qe, side="left"))
        return TimeSeries(t[lo:hi], v[lo:hi], validate=False)

    def _merge(self, chunk_arrays, deletes):
        if not chunk_arrays:
            return (np.empty(0, dtype=np.int64),
                    np.empty(0, dtype=np.float64))
        if self._streaming:
            from ..storage.readers import MergeReader
            points = list(MergeReader(chunk_arrays, deletes,
                                      self._engine.stats))
            t = np.array([p.t for p in points], dtype=np.int64)
            v = np.array([p.v for p in points], dtype=np.float64)
            return t, v
        from ..storage.readers import merged_series_arrays
        return merged_series_arrays(chunk_arrays, deletes,
                                    self._engine.stats)
